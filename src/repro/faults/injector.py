"""The fault injector: scripted, reproducible failure scenarios.

Every injection is expressed against the existing seams of the
simulation substrate — :meth:`SimulatedCloud.set_available` for
outages, the per-connection :class:`~repro.netsim.FailureModel` for
flakiness and stress — so production code paths run unmodified under
test.  Windows are scheduled as ordinary simulator processes, which
makes a whole chaos scenario deterministic in the simulator seed(s):
the injector itself draws no randomness.

Typical use::

    injector = FaultInjector(sim)
    injector.outage(clouds[0], start=100.0, end=700.0)
    injector.flaky(conns[2], rate=0.4, start=0.0, end=300.0)
    injector.force_drops(conns[1], count=2)
    sim.run_process(client.sync())
    assert injector.events  # timeline of what fired, for assertions
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..obs import TELEMETRY, TRACE

__all__ = ["FaultInjector", "PinnedStress", "ForcedFailures", "FaultEvent"]


@dataclass(frozen=True)
class FaultEvent:
    """One injection firing, for post-hoc assertions and debugging."""

    time: float
    kind: str       # "outage-begin", "outage-end", "flaky-begin", ...
    target: str     # cloud id the event applies to


class PinnedStress:
    """A stress process frozen onto one cloud (or onto none).

    Drop-in for :class:`~repro.netsim.StressProcess`: the failure model
    only ever calls ``stressed_cloud_at``.  Pinning removes the Markov
    timeline's randomness so a test can hold a chosen cloud at the
    elevated failure rate for as long as the pin is installed.
    """

    def __init__(self, cloud_id: Optional[str]):
        self.cloud_id = cloud_id

    def stressed_cloud_at(self, t: float) -> Optional[str]:
        return self.cloud_id


class ForcedFailures:
    """Failure-model wrapper that forces the next N payload drops.

    ``failure_probability`` returns 1.0 (certain mid-transfer drop) for
    the next ``remaining`` payload-carrying requests, then delegates to
    the wrapped model.  Preamble checks (``nbytes == 0``) and empty
    payloads always delegate — the point is to exercise the
    *mid-transfer* failure path, where bytes were already moved and
    charged before the request died.
    """

    def __init__(self, inner, count: int):
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self._inner = inner
        self.remaining = count

    def failure_probability(self, t: float, nbytes: int) -> float:
        if nbytes > 0 and self.remaining > 0:
            self.remaining -= 1
            return 1.0
        return self._inner.failure_probability(t, nbytes)

    def should_fail(self, t: float, nbytes: int) -> bool:
        return self._inner.should_fail(t, nbytes)

    def __getattr__(self, name):
        # base_rate, stress, cloud_id, ... — behave like the inner model.
        return getattr(self._inner, name)


class FaultInjector:
    """Schedules deterministic fault windows over a simulation."""

    def __init__(self, sim):
        self.sim = sim
        self.events: List[FaultEvent] = []

    # -- event log ---------------------------------------------------------

    def _log(self, kind: str, target: str) -> None:
        self.events.append(FaultEvent(self.sim.now, kind, target))
        # Mirror every firing into the shared tracer (when enabled), so
        # injected windows land on the affected cloud's track next to
        # the transfers they perturb.  The Chrome exporter stitches
        # ``<stem>-begin`` / ``<stem>-end`` pairs back into window spans.
        if TRACE.enabled:
            TRACE.event("fault", t=self.sim.now, track=target, kind=kind)
        if TELEMETRY.enabled:
            TELEMETRY.fault(target, self.sim.now, kind)

    def windows(self, kind: str, target: Optional[str] = None):
        """Closed [begin, end] windows reconstructed from the log.

        ``kind`` is the window stem (``"outage"``, ``"flaky"``,
        ``"stress"``); open-ended windows report ``end=None``.
        """
        begins: List[FaultEvent] = []
        out = []
        for event in self.events:
            if target is not None and event.target != target:
                continue
            if event.kind == f"{kind}-begin":
                begins.append(event)
            elif event.kind == f"{kind}-end" and begins:
                out.append((begins.pop(0).time, event.time))
        out.extend((event.time, None) for event in begins)
        return sorted(out)

    # -- injections --------------------------------------------------------

    def outage(self, cloud, start: float = 0.0,
               end: Optional[float] = None) -> None:
        """Full-service outage on ``cloud`` during [start, end).

        ``end=None`` leaves the cloud down for the rest of the run.
        Times are absolute virtual times; a ``start`` at or before
        ``sim.now`` takes effect on the next simulator step.
        """

        def script():
            if start > self.sim.now:
                yield self.sim.timeout(start - self.sim.now)
            cloud.set_available(False)
            self._log("outage-begin", cloud.cloud_id)
            if end is not None:
                yield self.sim.timeout(max(0.0, end - self.sim.now))
                cloud.set_available(True)
                self._log("outage-end", cloud.cloud_id)

        self.sim.process(script())

    def flaky(self, connection, rate: float, start: float = 0.0,
              end: Optional[float] = None) -> None:
        """Override one connection's base failure rate during a window.

        The previous rate is restored when the window closes, so
        scenarios can layer a flaky phase over an otherwise-clean link.
        """
        if not 0 <= rate < 1:
            raise ValueError(f"rate must be in [0, 1), got {rate}")

        def script():
            if start > self.sim.now:
                yield self.sim.timeout(start - self.sim.now)
            model = connection.conditions.failures
            previous = model.base_rate
            model.base_rate = rate
            self._log("flaky-begin", connection.cloud_id)
            if end is not None:
                yield self.sim.timeout(max(0.0, end - self.sim.now))
                model.base_rate = previous
                self._log("flaky-end", connection.cloud_id)

        self.sim.process(script())

    def slow_cloud(self, connections, factor: float, start: float = 0.0,
                   end: Optional[float] = None) -> None:
        """Degrade a cloud's links without errors during [start, end).

        Latency is multiplied by ``factor`` and both link directions'
        mean bandwidth divided by it — the cloud keeps answering
        correctly, only slowly, which is the brownout regime circuit
        breakers must *not* trip on (no failure evidence) but hedged
        reads should route around.  ``connections`` is one connection
        or a sequence of them (every device's link to the slowed
        cloud); originals are restored when the window closes.
        """
        if factor <= 1.0:
            raise ValueError(f"factor must exceed 1.0, got {factor}")
        if not isinstance(connections, (list, tuple)):
            connections = [connections]
        connections = list(connections)
        if not connections:
            raise ValueError("slow_cloud needs at least one connection")

        def script():
            if start > self.sim.now:
                yield self.sim.timeout(start - self.sim.now)
            saved = []
            for conn in connections:
                cond = conn.conditions
                saved.append((cond, cond.latency.base_seconds))
                cond.latency.base_seconds *= factor
                cond.uplink.scale(1.0 / factor)
                cond.downlink.scale(1.0 / factor)
            self._log("slow-begin", connections[0].cloud_id)
            if end is not None:
                yield self.sim.timeout(max(0.0, end - self.sim.now))
                for cond, base_seconds in saved:
                    cond.latency.base_seconds = base_seconds
                    cond.uplink.scale(factor)
                    cond.downlink.scale(factor)
                self._log("slow-end", connections[0].cloud_id)

        self.sim.process(script())

    def pin_stress(self, connections: Sequence, cloud_id: Optional[str],
                   start: float = 0.0, end: Optional[float] = None) -> None:
        """Pin the stress token to ``cloud_id`` on the given connections.

        Replaces each connection's stress process with a
        :class:`PinnedStress` for the window, restoring the originals at
        ``end``.  ``cloud_id=None`` pins *calm* (no cloud stressed).
        """
        connections = list(connections)

        def script():
            if start > self.sim.now:
                yield self.sim.timeout(start - self.sim.now)
            saved = [
                (conn, conn.conditions.failures.stress)
                for conn in connections
            ]
            pin = PinnedStress(cloud_id)
            for conn in connections:
                conn.conditions.failures.stress = pin
            self._log("stress-begin", cloud_id or "<calm>")
            if end is not None:
                yield self.sim.timeout(max(0.0, end - self.sim.now))
                for conn, previous in saved:
                    conn.conditions.failures.stress = previous
                self._log("stress-end", cloud_id or "<calm>")

        self.sim.process(script())

    def silent_corruption(self, cloud, path: str,
                          at: float = 0.0) -> None:
        """Rot the bytes of one stored object at time ``at``.

        Size and mtime are preserved (see ``ObjectStore.corrupt``), so
        only content verification — the download-path hash check or a
        deep scrub — can detect it.  A path that does not exist when
        the script fires is logged as ``corruption-miss`` and skipped
        (the object may have been garbage-collected meanwhile).
        """

        def script():
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            try:
                cloud.store.corrupt(path)
            except Exception:
                self._log("corruption-miss", cloud.cloud_id)
            else:
                self._log("corruption", cloud.cloud_id)

        self.sim.process(script())

    def permanent_loss(self, cloud, at: float = 0.0,
                       wipe: bool = True) -> None:
        """Kill a provider for good: offline forever, data destroyed.

        Unlike :meth:`outage` there is no end — and with ``wipe`` (the
        default) the stored objects are gone, so even a later
        resurrection of the service could not serve them.  Recovery
        must come from the surviving clouds (scrub + decommission).
        """

        def script():
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            cloud.set_available(False)
            if wipe:
                cloud.store.wipe()
            self._log("loss-begin", cloud.cloud_id)

        self.sim.process(script())

    def client_crash(self, client, process, at: float = 0.0) -> None:
        """Kill a client device mid-round at time ``at`` (power loss).

        ``process`` is the Process running the client's sync round; it
        is hard-stopped (:meth:`Process.kill` — no ``finally`` cleanup
        beyond the first yield), then ``client.crash()`` stops the
        transfer workers and the lock refresher the round had spawned.
        Blocks already acknowledged stay on the clouds; the client's
        journal is the only record the device keeps.
        """

        def script():
            if at > self.sim.now:
                yield self.sim.timeout(at - self.sim.now)
            if process is not None and process.is_alive:
                process.kill()
            client.crash()
            self._log("crash", client.device)

        self.sim.process(script())

    def force_drops(self, connection, count: int = 1) -> ForcedFailures:
        """Force the next ``count`` payload transfers on a connection to
        drop mid-transfer.  Takes effect immediately (no window — the
        forcing is consumed by the requests themselves); returns the
        wrapper so tests can assert ``remaining == 0``.
        """
        model = connection.conditions.failures
        if isinstance(model, ForcedFailures):
            model.remaining += count
            self._log("drops-armed", connection.cloud_id)
            return model
        wrapper = ForcedFailures(model, count)
        connection.conditions.failures = wrapper
        self._log("drops-armed", connection.cloud_id)
        return wrapper
