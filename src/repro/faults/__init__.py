"""Deterministic fault injection for chaos-testing UniDrive.

The harness perturbs a running simulation *from the outside* — outage
windows on :class:`~repro.cloud.SimulatedCloud`, flaky-rate overrides
and forced mid-transfer drops on :class:`~repro.cloud.CloudConnection`
link state, stress-token pinning on the failure models — without
touching any hot path in the cloud or network layers.
"""

from .injector import FaultInjector, ForcedFailures, PinnedStress

__all__ = ["FaultInjector", "ForcedFailures", "PinnedStress"]
