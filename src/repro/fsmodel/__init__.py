"""Local filesystem interface: virtual FS, real-dir adapter, watcher."""

from .virtual_fs import FileStat, LocalDirFileSystem, VirtualFileSystem
from .watcher import Change, ChangeKind, FolderWatcher, diff_snapshots

__all__ = [
    "Change",
    "ChangeKind",
    "FileStat",
    "FolderWatcher",
    "LocalDirFileSystem",
    "VirtualFileSystem",
    "diff_snapshots",
]
