"""In-memory model of a device's local sync folder.

The UniDrive client is written against this small filesystem interface;
:class:`VirtualFileSystem` backs simulations (content lives in memory,
mtimes come from the simulation clock supplied by the caller), while
:class:`LocalDirFileSystem` adapts a real directory for the examples.
"""

from __future__ import annotations

import hashlib
import os
import posixpath
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["FileStat", "VirtualFileSystem", "LocalDirFileSystem"]


@dataclass(frozen=True)
class FileStat:
    """What a directory scan records about one file."""

    path: str
    size: int
    mtime: float
    digest: str  # SHA-1 of content; cheap in-memory, cached on disk


def _normalize(path: str) -> str:
    return posixpath.normpath("/" + path.strip("/"))


class VirtualFileSystem:
    """A flat map of normalized paths to (content, mtime)."""

    def __init__(self):
        self._files: Dict[str, tuple] = {}

    def write_file(self, path: str, content: bytes, mtime: float) -> None:
        path = _normalize(path)
        digest = hashlib.sha1(content).hexdigest()
        self._files[path] = (bytes(content), mtime, digest)

    def read_file(self, path: str) -> bytes:
        path = _normalize(path)
        if path not in self._files:
            raise FileNotFoundError(path)
        return self._files[path][0]

    def delete_file(self, path: str) -> None:
        self._files.pop(_normalize(path), None)

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def scan(self) -> Dict[str, FileStat]:
        """Snapshot every file; the watcher diffs successive snapshots."""
        out = {}
        for path, (content, mtime, digest) in self._files.items():
            out[path] = FileStat(path, len(content), mtime, digest)
        return out

    def paths(self) -> List[str]:
        return sorted(self._files)


class LocalDirFileSystem:
    """The same interface over a real directory (for example scripts)."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _real(self, path: str) -> str:
        return os.path.join(self.root, _normalize(path).lstrip("/"))

    def write_file(self, path: str, content: bytes, mtime: float = 0.0) -> None:
        real = self._real(path)
        os.makedirs(os.path.dirname(real), exist_ok=True)
        with open(real, "wb") as handle:
            handle.write(content)

    def read_file(self, path: str) -> bytes:
        real = self._real(path)
        if not os.path.isfile(real):
            raise FileNotFoundError(path)
        with open(real, "rb") as handle:
            return handle.read()

    def delete_file(self, path: str) -> None:
        real = self._real(path)
        if os.path.isfile(real):
            os.remove(real)

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._real(path))

    def scan(self) -> Dict[str, FileStat]:
        out = {}
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                real = os.path.join(dirpath, name)
                rel = "/" + os.path.relpath(real, self.root).replace(os.sep, "/")
                with open(real, "rb") as handle:
                    content = handle.read()
                out[rel] = FileStat(
                    rel,
                    len(content),
                    os.path.getmtime(real),
                    hashlib.sha1(content).hexdigest(),
                )
        return out

    def paths(self) -> List[str]:
        return sorted(self.scan())
