"""Scan-based change detection for the local sync folder.

The paper's Windows client hooks file-system notifications; our
simulator equivalent diffs successive directory snapshots, which yields
the same abstraction downstream: a list of add / edit / delete records
feeding the ``ChangedFileList`` (paper §5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from .virtual_fs import FileStat

__all__ = ["ChangeKind", "Change", "diff_snapshots", "FolderWatcher"]


class ChangeKind(enum.Enum):
    ADD = "add"
    EDIT = "edit"
    DELETE = "delete"


@dataclass(frozen=True)
class Change:
    """One local filesystem change since the previous scan."""

    kind: ChangeKind
    path: str
    mtime: float = 0.0


def diff_snapshots(
    old: Dict[str, FileStat], new: Dict[str, FileStat]
) -> List[Change]:
    """Compare two scans; content digests decide 'edited'."""
    changes: List[Change] = []
    for path in sorted(new):
        stat = new[path]
        previous = old.get(path)
        if previous is None:
            changes.append(Change(ChangeKind.ADD, path, stat.mtime))
        elif previous.digest != stat.digest:
            changes.append(Change(ChangeKind.EDIT, path, stat.mtime))
    for path in sorted(old):
        if path not in new:
            changes.append(Change(ChangeKind.DELETE, path, old[path].mtime))
    return changes


class FolderWatcher:
    """Tracks the last-seen snapshot and reports deltas on poll."""

    def __init__(self, filesystem):
        self.filesystem = filesystem
        self._last: Dict[str, FileStat] = {}

    def prime(self) -> None:
        """Adopt the current state as the baseline (no changes reported)."""
        self._last = self.filesystem.scan()

    def poll(self) -> List[Change]:
        """Return changes since the last poll (or prime) and advance."""
        current = self.filesystem.scan()
        changes = diff_snapshots(self._last, current)
        self._last = current
        return changes
