"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    A 30-second tour: two simulated devices sync, conflict, resolve.
``capacity``
    The §1 storage-efficiency arithmetic for your quotas.
``compare``
    Pocket Figure 8: every approach moves one file at one vantage point.
``trial``
    A scaled §7.3 user trial with summary statistics.
``results``
    Print the rendered benchmark tables from ``benchmarks/results``.
``inspect-metadata``
    Decrypt and pretty-print a UniDrive metadata file (e.g. one written
    by ``examples/local_folders.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UniDrive reproduction (Middleware 2015) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="two devices sync, conflict and resolve")

    capacity = sub.add_parser(
        "capacity", help="storage efficiency vs replication (paper §1)"
    )
    capacity.add_argument("--quotas", default="100,100,100",
                          help="comma-separated per-cloud quotas (GB)")
    capacity.add_argument("--k", type=int, default=2,
                          help="data blocks per segment")
    capacity.add_argument("--kr", type=int, default=2,
                          help="reliability parameter K_r")
    capacity.add_argument("--failures", type=int, default=1,
                          help="vendor outages to tolerate")

    compare = sub.add_parser(
        "compare", help="one-file shootout: UniDrive vs all baselines"
    )
    compare.add_argument("--location", default="virginia")
    compare.add_argument("--size-mb", type=int, default=8)
    compare.add_argument("--seed", type=int, default=42)

    trial = sub.add_parser("trial", help="scaled real-world trial (§7.3)")
    trial.add_argument("--users", type=int, default=25)
    trial.add_argument("--days", type=float, default=2.0)
    trial.add_argument("--seed", type=int, default=0)

    results = sub.add_parser(
        "results", help="print rendered benchmark tables (benchmarks/results)"
    )
    results.add_argument("--dir", default=None,
                         help="results directory (default: auto-detect)")

    inspect = sub.add_parser(
        "inspect-metadata", help="decrypt and print a metadata file"
    )
    inspect.add_argument("path", help="path to a 'base' metadata blob")
    inspect.add_argument("--key", default="UniDrive",
                         help="8-byte DES key (default: UniDrive)")
    return parser


def _cmd_demo() -> int:
    import numpy as np

    from . import SimulatedCloud, Simulator, UniDriveClient, UniDriveConfig
    from .cloud import make_instant_connection
    from .fsmodel import VirtualFileSystem

    sim = Simulator()
    clouds = [SimulatedCloud(sim, f"cloud{i}") for i in range(5)]
    clients = []
    for name in ("laptop", "phone"):
        fs = VirtualFileSystem()
        conns = [
            make_instant_connection(sim, c, seed=hash(name) % 97 + i)
            for i, c in enumerate(clouds)
        ]
        clients.append(UniDriveClient(
            sim, name, fs, conns, config=UniDriveConfig(theta=128 * 1024),
            rng=np.random.default_rng(len(name)),
        ))
    laptop, phone = clients
    laptop.fs.write_file("/hello.txt", b"hello from the laptop",
                         mtime=sim.now)
    sim.run_process(laptop.sync())
    report = sim.run_process(phone.sync())
    print(f"phone received: {report.downloaded_files}")
    laptop.fs.write_file("/hello.txt", b"laptop edit", mtime=sim.now)
    phone.fs.write_file("/hello.txt", b"phone edit", mtime=sim.now)
    sim.run_process(laptop.sync())
    report = sim.run_process(phone.sync())
    print(f"conflict detected at: {report.conflicts}")
    sim.run_process(phone.resolve_conflict("/hello.txt", keep="local"))
    sim.run_process(laptop.sync())
    print(f"after resolution both read: "
          f"{laptop.fs.read_file('/hello.txt').decode()!r}")
    return 0


def _cmd_capacity(args) -> int:
    from .core.capacity import (
        replication_capacity,
        storage_expansion,
        unidrive_capacity,
    )

    quotas = [float(q) for q in args.quotas.split(",") if q]
    unidrive = unidrive_capacity(quotas, args.k, args.kr)
    replicated = replication_capacity(quotas, args.failures)
    expansion = storage_expansion(args.k, args.kr, len(quotas))
    print(f"clouds: {len(quotas)}, quotas: {quotas}")
    print(f"UniDrive  (k={args.k}, K_r={args.kr}): "
          f"{unidrive:.1f} usable ({expansion:.2f}x stored per byte)")
    print(f"replication (tolerating {args.failures} outage(s)): "
          f"{replicated:.1f} usable")
    gain = unidrive / replicated if replicated else float("inf")
    print(f"UniDrive advantage: {gain:.2f}x")
    return 0


def _cmd_compare(args) -> int:
    from .workloads import APPROACHES, Testbed

    size = args.size_mb << 20
    bed = Testbed(args.location, seed=args.seed, retain_content=False)
    ups = bed.measure_upload_all(APPROACHES, size)
    print(f"upload of {args.size_mb} MB at {args.location}:")
    ranked = sorted(
        ups.items(), key=lambda kv: kv[1].duration or float("inf")
    )
    for approach, m in ranked:
        text = f"{m.duration:.1f}s" if m.duration else "failed"
        print(f"  {approach:<12}{text:>10}")
    return 0


def _cmd_trial(args) -> int:
    from .workloads import run_trial

    result = run_trial(n_users=args.users, days=args.days,
                       uploads_per_user=5, seed=args.seed)
    print(f"users: {args.users}, uploads: {len(result.records)}")
    print(f"API request success: {result.api_success_rate:.1%}")
    print(f"file operation success: {result.file_success_rate:.1%}")
    throughputs = result.throughput_by()
    if throughputs:
        import numpy as np

        print(f"median upload throughput: "
              f"{float(np.median(throughputs)):.2f} Mbps")
    return 0


def _cmd_results(args) -> int:
    import glob
    import os

    directory = args.dir
    if directory is None:
        here = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        directory = os.path.join(here, "benchmarks", "results")
    files = sorted(glob.glob(os.path.join(directory, "*.txt")))
    if not files:
        print(f"no rendered results under {directory}; run "
              "`pytest benchmarks/ --benchmark-only` first",
              file=sys.stderr)
        return 1
    for path in files:
        with open(path) as handle:
            print(handle.read())
    return 0


def _cmd_inspect(args) -> int:
    from .core.serialization import deserialize_image

    key = args.key.encode()
    if len(key) != 8:
        print(f"error: key must be exactly 8 bytes, got {len(key)}",
              file=sys.stderr)
        return 2
    try:
        with open(args.path, "rb") as handle:
            blob = handle.read()
        image = deserialize_image(blob, key)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except Exception as exc:
        print(f"error: cannot decrypt/parse ({exc})", file=sys.stderr)
        return 1
    print(json.dumps(image.to_dict(), indent=2, sort_keys=True))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "capacity":
        return _cmd_capacity(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trial":
        return _cmd_trial(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "inspect-metadata":
        return _cmd_inspect(args)
    return 2  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
