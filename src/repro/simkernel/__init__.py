"""Deterministic discrete-event simulation kernel (SimPy-flavoured)."""

from .core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .sync import Gate, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
