"""Discrete-event simulation kernel.

A small, deterministic, generator-based process kernel in the spirit of
SimPy.  Every stochastic or time-consuming activity in the UniDrive
reproduction (cloud API calls, block transfers, device sync loops) is
expressed as a generator that yields :class:`Event` objects and is driven
by a :class:`Simulator`.

The kernel is deliberately minimal: events, timeouts, processes,
interrupts and the two combinators :class:`AllOf` / :class:`AnyOf`.
Everything runs in *virtual* time, so a month-long measurement campaign
completes in seconds of wall-clock time and is reproducible event for
event.

The hot loop is allocation-lean: every kernel class declares
``__slots__``, an event defers allocating its callback list until a
*second* waiter subscribes (the overwhelmingly common case is exactly
one waiter — the process that yielded the event), and
:meth:`Simulator.call_later` schedules a bare callable at a future time
without building an :class:`Event` at all (the transfer engine's timer
path).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

_PENDING = object()


class SimulationError(Exception):
    """Raised when the kernel detects an internal protocol violation."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available both as ``exc.cause`` and as
    ``exc.args[0]``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *untriggered*; calling :meth:`succeed` or :meth:`fail`
    triggers it and schedules its callbacks to run at the current virtual
    time.  Processes wait on events by ``yield``-ing them.

    Callbacks are stored in a compact tri-state slot: ``None`` (no
    waiters yet), a single callable (one waiter — no list allocated), or
    a list (two or more waiters).
    """

    __slots__ = ("sim", "_cbs", "_processed", "_value", "_ok", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._cbs: Any = None
        self._processed = False
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.defused = False

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def callbacks(self) -> Optional[List[Callable[["Event"], None]]]:
        """Snapshot of pending callbacks; ``None`` once processed.

        Exposed for introspection only — register through
        :meth:`add_callback`.
        """
        if self._processed:
            return None
        cbs = self._cbs
        if cbs is None:
            return []
        if type(cbs) is list:
            return list(cbs)
        return [cbs]

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The success value, or the failure exception instance."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with ``exception`` as its outcome."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        Adding a callback to an already-processed event schedules an
        immediate re-delivery so late subscribers still observe it.
        """
        if self._processed:
            # Already processed: deliver asynchronously at the current time.
            self.sim.call_later(0.0, lambda: callback(self))
            return
        cbs = self._cbs
        if cbs is None:
            self._cbs = callback
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self._cbs = [cbs, callback]

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._processed:
            return
        cbs = self._cbs
        if type(cbs) is list:
            if callback in cbs:
                cbs.remove(callback)
        elif cbs is not None and cbs == callback:
            self._cbs = None


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self.delay = delay
        sim._schedule(self, delay=delay)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered on creation")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout is triggered on creation")


class Process(Event):
    """A running generator, itself usable as an event (fires on return).

    The generator yields :class:`Event` instances.  When a yielded event
    succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator (and the event is
    defused, since the process took responsibility for it).
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        init = Event(sim)
        init._ok = True
        init._value = None
        init._cbs = self._resume
        sim._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def kill(self) -> None:
        """Hard-stop the process at the current time (power loss).

        Unlike :meth:`interrupt`, nothing is thrown *into* the process
        for it to handle: the generator is closed on the spot, and any
        ``finally`` cleanup runs only up to its first ``yield`` —
        cleanup that needs further simulated I/O is abandoned
        mid-flight, exactly as when the OS process dies.  The Process
        event succeeds (value ``None``) so combinators waiting on it
        resolve instead of hanging forever.  Killing an already
        terminated process is a no-op.
        """
        if self.triggered:
            return
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        for _attempt in range(8):
            try:
                self._generator.close()
                break
            except RuntimeError:
                # The generator yielded during GeneratorExit: cleanup
                # wanted simulated I/O, which dies with the process.
                # Re-close from the new suspension point; the frame
                # unwinds within a bounded number of rounds.
                continue
            except Exception:
                break
        self.succeed(None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        if self._target is self:
            raise SimulationError("a process cannot interrupt itself")
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.defused = True
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
        poke._cbs = self._resume
        self.sim._schedule(poke)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Stale wake-up: an event this process once waited on fired
            # after the process was interrupted away from it and has
            # since terminated.  Consume silently.
            if not event._ok:
                event.defused = True
            return
        self._target = None
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    event.defused = True
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Exception as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process yielded a non-event: {target!r}"
                )
                try:
                    self._generator.throw(exc)
                except StopIteration as stop:
                    self.succeed(stop.value)
                except Exception as err:
                    self.fail(err)
                return
            if target._processed:
                # Yielded an already-processed event: continue immediately.
                event = target
                continue
            self._target = target
            target.add_callback(self._resume)
            return


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("events belong to different simulators")
        self._pending = len(self.events)
        if self._pending == 0:
            self.succeed(self._collect())
        else:
            for ev in self.events:
                ev.add_callback(self._check)

    def _collect(self) -> List[Any]:
        return [ev._value for ev in self.events if ev.triggered]

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when *all* events have fired; value is the list of values.

    Fails fast if any constituent event fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the *first* event fires; ``winner`` is that event."""

    __slots__ = ("winner",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        self.winner: Optional[Event] = None
        super().__init__(sim, events)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self.winner = event
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)


class Simulator:
    """The event loop: a priority queue over virtual time.

    Ties at the same timestamp are broken by insertion order, making runs
    fully deterministic.
    """

    __slots__ = ("_now", "_queue", "_counter", "_steps")

    def __init__(self):
        self._now = 0.0
        self._queue: List = []
        self._counter = itertools.count()
        self._steps = 0

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of queue entries processed so far (events + calls)."""
        return self._steps

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start ``generator`` as a process; returns its Process event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- observability helpers ------------------------------------------
    #
    # Convenience bridges to :mod:`repro.obs` with this simulator's
    # clock.  The import is deferred so the kernel keeps zero import-time
    # dependencies beyond the stdlib; both calls are no-ops (returning a
    # shared null span) while tracing is disabled.

    def span(self, name: str, track: str = "sim", **attrs: Any):
        """Context manager tracing a section against ``self.now``."""
        from ..obs.tracer import NULL_SPAN, TRACE

        if not TRACE.enabled:
            return NULL_SPAN
        return TRACE.span(name, track=track, clock=lambda: self._now, **attrs)

    def trace_event(self, name: str, track: str = "sim", **attrs: Any) -> None:
        """Record a point event at the current virtual time."""
        from ..obs.tracer import TRACE

        if TRACE.enabled:
            TRACE.event(name, t=self._now, track=track, **attrs)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(
            self._queue, (self._now + delay, next(self._counter), event, None)
        )

    def call_later(self, delay: float, func: Callable[[], None]) -> float:
        """Run bare ``func()`` at ``now + delay``; returns that time.

        The allocation-lean timer path: no :class:`Event`, no callback
        registration — just a heap entry.  Ordering relative to events
        scheduled for the same instant follows insertion order, exactly
        like event scheduling.
        """
        when = self._now + delay
        heapq.heappush(self._queue, (when, next(self._counter), None, func))
        return when

    def call_at(self, when: float, func: Callable[[], None]) -> float:
        """Run bare ``func()`` at absolute virtual time ``when``.

        The transfer engine's analytic fast-forward computes a far
        deadline by replaying the exact per-boundary float adds the
        event path would perform; scheduling it through
        :meth:`call_later` would re-derive it as ``now + (when - now)``
        and land on a different float.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at into the past: {when} < {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._counter), None, func))
        return when

    def _schedule_call(self, func: Callable[[], None]) -> None:
        self.call_later(0.0, func)

    # -- execution ------------------------------------------------------

    def _step(self) -> None:
        when, _, event, func = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = when
        self._steps += 1
        if func is not None:
            func()
            return
        cbs = event._cbs
        event._cbs = None
        event._processed = True
        if cbs is not None:
            if type(cbs) is list:
                for callback in cbs:
                    callback(event)
            else:
                cbs(event)
        if not event._ok and not event.defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time exceeds ``until``.

        The :meth:`_step` body is inlined here with hoisted locals —
        this loop executes once per simulated event, and the call plus
        repeated attribute lookups are measurable at campaign scale.
        """
        queue = self._queue
        pop = heapq.heappop
        steps = self._steps
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    return
                when, _, event, func = pop(queue)
                self._now = when
                steps += 1
                if func is not None:
                    func()
                    continue
                cbs = event._cbs
                event._cbs = None
                event._processed = True
                if cbs is not None:
                    if type(cbs) is list:
                        for callback in cbs:
                            callback(event)
                    else:
                        cbs(event)
                if not event._ok and not event.defused:
                    raise event._value
        finally:
            self._steps = steps
        if until is not None:
            self._now = max(self._now, until)

    def run_process(self, generator_or_process) -> Any:
        """Run a generator (or Process) to completion; return its value.

        Re-raises the process's exception on failure.  This is the main
        entry point used by tests and experiment harnesses.
        """
        proc = generator_or_process
        if not isinstance(proc, Process):
            proc = self.process(proc)
        # Same inlined hot loop as run(): one iteration per simulated
        # event, with the per-step method call and attribute lookups
        # hoisted out.
        queue = self._queue
        pop = heapq.heappop
        steps = self._steps
        try:
            while queue and not proc.triggered:
                when, _, event, func = pop(queue)
                self._now = when
                steps += 1
                if func is not None:
                    func()
                    continue
                cbs = event._cbs
                event._cbs = None
                event._processed = True
                if cbs is not None:
                    if type(cbs) is list:
                        for callback in cbs:
                            callback(event)
                    else:
                        cbs(event)
                if not event._ok and not event.defused:
                    raise event._value
        finally:
            self._steps = steps
        if not proc.triggered:
            raise SimulationError(
                "process starved: no scheduled events remain"
            )
        # Drain same-timestamp bookkeeping so callbacks fire, then report.
        if not proc.ok:
            proc.defused = True
            raise proc.value
        return proc.value
