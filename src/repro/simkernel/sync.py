"""Inter-process coordination primitives for the simulation kernel.

These mirror the subset of SimPy's resource layer that the UniDrive
schedulers need: an unbounded FIFO :class:`Store` (used as a work queue
between the scheduler and per-connection worker processes), a counting
:class:`Resource` (connection slots), and a broadcast :class:`Gate`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from .core import Event, Simulator

__all__ = ["Store", "Resource", "Gate"]


class Store:
    """An unbounded FIFO queue of items with event-based ``get``.

    ``put`` never blocks.  ``get`` returns an :class:`Event` that fires
    with the next item once one is available, in strict FIFO order both
    over items and over waiting getters.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def put_front(self, item: Any) -> None:
        """Enqueue ``item`` at the head (used for re-queued failed work)."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.appendleft(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: Event) -> None:
        """Withdraw a pending ``get`` event (no-op if already fired)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class Resource:
    """A counting semaphore with FIFO acquisition order."""

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release a held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without matching acquire()")
        if self._waiters:
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Gate:
    """A broadcast flag: processes wait until the gate is opened.

    Unlike an :class:`Event`, a gate can be reset and reused; each call to
    :meth:`wait` while closed returns a fresh event released by the next
    :meth:`open`.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._open = False
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = Event(self.sim)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        """Open the gate, releasing all current waiters."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def close(self) -> None:
        self._open = False
