"""UniDrive reproduction: synergize multiple consumer cloud storage services.

A from-scratch Python implementation of the system described in
"UniDrive: Synergize Multiple Consumer Cloud Storage Services"
(ACM Middleware 2015), including every substrate it depends on:

* :mod:`repro.simkernel` -- deterministic discrete-event simulation;
* :mod:`repro.netsim` -- bandwidth / latency / failure processes and a
  fluid-flow transfer engine;
* :mod:`repro.cloud` -- simulated CCS services behind the five RESTful
  calls (upload, download, create, list, delete);
* :mod:`repro.codec` -- GF(2^8) Reed-Solomon erasure coding
  (non-systematic, as the paper's security design requires);
* :mod:`repro.chunking` -- content-defined segmentation;
* :mod:`repro.crypto` -- DES metadata encryption;
* :mod:`repro.fsmodel` -- the local sync-folder interface;
* :mod:`repro.core` -- UniDrive itself: metadata model, Delta-sync,
  quorum lock, three-way merge, block scheduling with
  over-provisioning and in-channel probing, the client, and the
  baseline systems;
* :mod:`repro.workloads` -- vantage-point profiles, workload
  generators, and the experiment harness behind every figure/table;
* :mod:`repro.obs` -- sim-clock-aware tracing and metrics (spans,
  counters, JSONL / Chrome-trace exporters), disabled by default.

Quick start::

    from repro import Simulator, SimulatedCloud, UniDriveClient
    from repro.cloud import make_instant_connection
    from repro.fsmodel import VirtualFileSystem

    sim = Simulator()
    clouds = [SimulatedCloud(sim, f"cloud{i}") for i in range(5)]
    fs = VirtualFileSystem()
    conns = [make_instant_connection(sim, c, seed=i)
             for i, c in enumerate(clouds)]
    client = UniDriveClient(sim, "laptop", fs, conns)
    fs.write_file("/hello.txt", b"hi", mtime=0.0)
    report = sim.run_process(client.sync())
"""

from . import obs
from .cloud import CloudAPI, SimulatedCloud
from .core import (
    SyncReport,
    UniDriveClient,
    UniDriveConfig,
    UniDriveTransfer,
)
from .simkernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "CloudAPI",
    "SimulatedCloud",
    "Simulator",
    "SyncReport",
    "UniDriveClient",
    "UniDriveConfig",
    "UniDriveTransfer",
    "obs",
    "__version__",
]
