"""Crash-resumable sync rounds: the client-side write-ahead journal.

A sync round uploads data blocks *before* committing metadata (paper
Algorithm 1), so a device that dies mid-round leaves blocks on clouds
that no metadata references.  Without a journal the resumed device
would re-upload everything it already transferred and leak the blocks
of any segment it no longer wants — orphans no garbage collector can
find, because they were never committed.

The journal closes both gaps with one strictly conservative rule:

* a block is recorded **after** its upload acknowledges (the Cloud-ID
  callback), so *recorded ⇒ landed* — a resumed round can credit every
  journaled block as already uploaded and transfer zero bytes for it;
* the round's planned segments are recorded **before** any upload
  starts, so every block the crashed round could possibly have landed
  belongs to a journaled segment — after the resumed round commits,
  journaled blocks that did not make it into the committed image are
  provably orphans and are deleted.

``lock_pending`` brackets the quorum-lock critical section: a device
that died while its lock files might exist on clouds withdraws them on
resume instead of making peers wait out the ΔT staleness break.

The journal is device-local state.  In the simulation it lives in
memory; :meth:`to_bytes` / :meth:`from_bytes` give it a durable wire
form so tests (and a real port) can persist it across a crash.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["SyncJournal"]


class SyncJournal:
    """Write-ahead journal for one device's in-flight sync round."""

    def __init__(self):
        #: True while a round is in flight (begin..commit).
        self.active = False
        #: Image version the in-flight round started from.  A resumed
        #: round starting from the same base continues the journal; a
        #: different base means the crashed round's work was superseded.
        self.base_version = 0
        #: segment_id -> {block index: cloud_id} of acknowledged uploads.
        self.blocks: Dict[str, Dict[int, str]] = {}
        #: segment_id -> {"size", "n", "k"} for every segment the round
        #: planned to upload (needed to name orphan block files).
        self.segments: Dict[str, Dict[str, int]] = {}
        #: True while this device's quorum-lock files may exist on
        #: clouds (set before acquire, cleared after release).
        self.lock_pending = False
        #: Transactional round id ("device:counter") of the in-flight
        #: commit, "" outside transactional mode.  A resumed incarnation
        #: can grep the cloud delta log for this id to learn whether its
        #: round's single commit record made it out before the crash.
        self.round_id = ""

    # -- round lifecycle ----------------------------------------------------

    def begin(self, base_version: int, records) -> None:
        """Open a round: note the planned segments before uploads start.

        Recorded blocks are never cleared here — only :meth:`commit`
        retires them.  A resume (same or newer base) therefore keeps
        every acknowledged block: each one either ends up referenced by
        the committed image or is swept as an orphan at commit time.
        """
        self.active = True
        self.base_version = base_version
        for record in records:
            self.segments.setdefault(
                record.segment_id,
                {"size": record.size, "n": record.n, "k": record.k},
            )

    def record_block(self, segment_id: str, index: int,
                     cloud_id: str) -> None:
        """The upload acknowledged: remember where the block landed."""
        self.blocks.setdefault(segment_id, {})[index] = cloud_id

    def mark_lock(self, pending: bool) -> None:
        self.lock_pending = pending

    def note_round(self, round_id: str) -> None:
        """Record the transactional commit id before publishing it."""
        self.round_id = round_id

    def commit(self) -> None:
        """The round's metadata committed (and orphans were swept)."""
        self.active = False
        self.blocks = {}
        self.segments = {}
        self.lock_pending = False
        self.round_id = ""

    # -- resume queries -----------------------------------------------------

    @property
    def dirty(self) -> bool:
        """Anything on clouds that metadata does not account for?"""
        return self.active and bool(self.blocks or self.lock_pending)

    def resume_map(self) -> Dict[str, Dict[int, str]]:
        """Copy of the journaled placements, for scheduler preseeding."""
        return {sid: dict(placed) for sid, placed in self.blocks.items()}

    def orphan_blocks(self, image) -> Dict[str, Dict[int, str]]:
        """Journaled blocks the committed ``image`` does not reference.

        A journaled block is legitimate iff the committed image holds
        its segment *and* maps its index to the cloud the journal says
        it landed on; everything else is an orphan to delete.
        """
        orphans: Dict[str, Dict[int, str]] = {}
        for segment_id, placed in self.blocks.items():
            record = image.segments.get(segment_id)
            for index, cloud_id in placed.items():
                if (record is not None
                        and record.locations.get(index) == cloud_id):
                    continue
                orphans.setdefault(segment_id, {})[index] = cloud_id
        return orphans

    # -- serialization ------------------------------------------------------

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "active": self.active,
                "base_version": self.base_version,
                "lock_pending": self.lock_pending,
                "round_id": self.round_id,
                "blocks": {
                    sid: {str(i): c for i, c in sorted(placed.items())}
                    for sid, placed in sorted(self.blocks.items())
                },
                "segments": {
                    sid: dict(info)
                    for sid, info in sorted(self.segments.items())
                },
            },
            sort_keys=True,
        ).encode()

    @staticmethod
    def from_bytes(blob: bytes) -> "SyncJournal":
        data = json.loads(blob.decode())
        journal = SyncJournal()
        journal.active = bool(data.get("active", False))
        journal.base_version = int(data.get("base_version", 0))
        journal.lock_pending = bool(data.get("lock_pending", False))
        journal.round_id = str(data.get("round_id", ""))
        journal.blocks = {
            sid: {int(i): c for i, c in placed.items()}
            for sid, placed in data.get("blocks", {}).items()
        }
        journal.segments = {
            sid: {key: int(value) for key, value in info.items()}
            for sid, info in data.get("segments", {}).items()
        }
        return journal
