"""In-channel bandwidth probing (paper §6.2).

UniDrive never probes explicitly: every completed block transfer *is*
the probe.  The estimator keeps an exponentially-weighted moving average
of **per-connection** throughput per (cloud, direction) — per-connection
rather than aggregate because scheduling hands one block to one
connection, and clouds differ in how many concurrent connections they
sustain.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ThroughputEstimator", "UPLOAD", "DOWNLOAD"]

UPLOAD = "up"
DOWNLOAD = "down"


class ThroughputEstimator:
    """EWMA per-connection throughput tracker."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimates: Dict[Tuple[str, str], float] = {}
        self._samples: Dict[Tuple[str, str], int] = {}

    def record(self, cloud_id: str, direction: str, nbytes: float,
               duration: float) -> None:
        """Feed one completed transfer as a probe."""
        if duration <= 0:
            return
        throughput = nbytes / duration
        key = (cloud_id, direction)
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = throughput
        else:
            self._estimates[key] = (
                self.alpha * throughput + (1 - self.alpha) * current
            )
        self._samples[key] = self._samples.get(key, 0) + 1

    def record_failure(self, cloud_id: str, direction: str) -> None:
        """Penalize a cloud whose request failed (wasted the channel).

        A cloud that has never completed a transfer gets a *seeded*
        finite estimate on its first failure: left at ``+inf`` it would
        keep winning :meth:`rank` forever, so an unreachable-but-
        unprobed cloud would be explored first on every batch.  The seed
        is one EWMA step below the slowest probed peer (or a floor of
        1 B/s with no peers), so the failing cloud ranks behind every
        probed cloud and behind still-unprobed ones, while a single
        completed transfer pulls the estimate back up through the EWMA.
        """
        key = (cloud_id, direction)
        current = self._estimates.get(key)
        if current is None:
            peers = [
                value
                for (_cid, peer_direction), value in self._estimates.items()
                if peer_direction == direction and math.isfinite(value)
            ]
            seed = min(peers) * (1 - self.alpha) if peers else 1.0
            self._estimates[key] = seed
        else:
            self._estimates[key] = current * (1 - self.alpha)

    def estimate(self, cloud_id: str, direction: str) -> float:
        """Estimated per-connection bytes/second.

        Unprobed clouds report ``+inf`` so the scheduler explores them
        first — the cheapest possible probe is the next real block.
        """
        return self._estimates.get((cloud_id, direction), math.inf)

    def sample_count(self, cloud_id: str, direction: str) -> int:
        return self._samples.get((cloud_id, direction), 0)

    def rank(self, cloud_ids: Sequence[str], direction: str) -> List[str]:
        """Clouds ordered fastest-first (unprobed clouds lead)."""
        return sorted(
            cloud_ids,
            key=lambda cid: -self.estimate(cid, direction),
        )
