"""In-channel bandwidth probing (paper §6.2).

UniDrive never probes explicitly: every completed block transfer *is*
the probe.  The estimator keeps an exponentially-weighted moving average
of **per-connection** throughput per (cloud, direction) — per-connection
rather than aggregate because scheduling hands one block to one
connection, and clouds differ in how many concurrent connections they
sustain.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs import TRACE

__all__ = ["ThroughputEstimator", "UPLOAD", "DOWNLOAD"]

UPLOAD = "up"
DOWNLOAD = "down"


class ThroughputEstimator:
    """EWMA per-connection throughput tracker."""

    def __init__(self, alpha: float = 0.3):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._estimates: Dict[Tuple[str, str], float] = {}
        self._samples: Dict[Tuple[str, str], int] = {}
        self._updated: Dict[Tuple[str, str], float] = {}

    def record(self, cloud_id: str, direction: str, nbytes: float,
               duration: float, now: Optional[float] = None) -> None:
        """Feed one completed transfer as a probe.

        ``now`` (sim time) stamps the update for :meth:`snapshot` and the
        ``estimator_update`` trace event; callers without a clock may
        omit it.
        """
        if duration <= 0:
            return
        throughput = nbytes / duration
        key = (cloud_id, direction)
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = throughput
        else:
            self._estimates[key] = (
                self.alpha * throughput + (1 - self.alpha) * current
            )
        self._samples[key] = self._samples.get(key, 0) + 1
        if now is not None:
            self._updated[key] = now
        if TRACE.enabled:
            TRACE.event(
                "estimator_update",
                t=now,
                track=cloud_id,
                direction=direction,
                kind="sample",
                estimate=self._estimates[key],
                samples=self._samples[key],
            )

    def record_failure(self, cloud_id: str, direction: str,
                       now: Optional[float] = None) -> None:
        """Penalize a cloud whose request failed (wasted the channel).

        A cloud that has never completed a transfer gets a *seeded*
        finite estimate on its first failure: left at ``+inf`` it would
        keep winning :meth:`rank` forever, so an unreachable-but-
        unprobed cloud would be explored first on every batch.  The seed
        is one EWMA step below the slowest probed peer (or a floor of
        1 B/s with no peers), so the failing cloud ranks behind every
        probed cloud and behind still-unprobed ones, while a single
        completed transfer pulls the estimate back up through the EWMA.
        """
        key = (cloud_id, direction)
        current = self._estimates.get(key)
        if current is None:
            peers = [
                value
                for (_cid, peer_direction), value in self._estimates.items()
                if peer_direction == direction and math.isfinite(value)
            ]
            seed = min(peers) * (1 - self.alpha) if peers else 1.0
            self._estimates[key] = seed
        else:
            self._estimates[key] = current * (1 - self.alpha)
        if now is not None:
            self._updated[key] = now
        if TRACE.enabled:
            TRACE.event(
                "estimator_update",
                t=now,
                track=cloud_id,
                direction=direction,
                kind="failure",
                estimate=self._estimates[key],
                samples=self._samples.get(key, 0),
            )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Observable state: per ``cloud:direction`` channel, the current
        estimate (bytes/s), sample count, and last-update sim time
        (``None`` when the channel was never stamped with a clock).

        The PR 3 ``record_failure`` seeding bug was invisible precisely
        because this state had no read path besides :meth:`estimate`.
        """
        return {
            f"{cloud_id}:{direction}": {
                "estimate": value,
                "samples": self._samples.get((cloud_id, direction), 0),
                "updated_at": self._updated.get((cloud_id, direction)),
            }
            for (cloud_id, direction), value in sorted(self._estimates.items())
        }

    def estimate(self, cloud_id: str, direction: str) -> float:
        """Estimated per-connection bytes/second.

        Unprobed clouds report ``+inf`` so the scheduler explores them
        first — the cheapest possible probe is the next real block.
        """
        return self._estimates.get((cloud_id, direction), math.inf)

    def sample_count(self, cloud_id: str, direction: str) -> int:
        return self._samples.get((cloud_id, direction), 0)

    def rank(self, cloud_ids: Sequence[str], direction: str) -> List[str]:
        """Clouds ordered fastest-first (unprobed clouds lead)."""
        return sorted(
            cloud_ids,
            key=lambda cid: -self.estimate(cid, direction),
        )
