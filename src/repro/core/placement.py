"""Block placement arithmetic (paper §6.1).

For a segment of ``k`` data blocks striped over ``N`` clouds with
reliability parameter ``K_r`` and security parameter ``K_s``:

* **fair share** — every cloud must hold at least ``ceil(k / K_r)``
  blocks, so that any ``K_r`` accessible clouds can supply ``k`` blocks;
* **security cap** — no cloud may hold more than
  ``ceil(k / (K_s - 1)) - 1`` blocks (or ``k`` when ``K_s == 1``), so no
  coalition of ``K_s - 1`` clouds accumulates ``k`` blocks;
* the erasure code therefore needs at most ``cap * N`` distinct blocks,
  of which ``fair_share * N`` are *normal* parity blocks scheduled
  deterministically and the rest are *over-provisioned* parity blocks
  assigned on the fly to fast clouds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = [
    "fair_share",
    "max_blocks_per_cloud",
    "normal_block_count",
    "max_block_count",
    "fair_share_assignment",
    "rebalance_on_remove",
    "rebalance_on_add",
]


def fair_share(k: int, k_reliability: int) -> int:
    """Minimum blocks per cloud for the reliability requirement."""
    if k < 1 or k_reliability < 1:
        raise ValueError(f"k and K_r must be >= 1, got k={k} K_r={k_reliability}")
    return math.ceil(k / k_reliability)


def max_blocks_per_cloud(k: int, k_security: int) -> int:
    """Maximum blocks per cloud allowed by the security requirement."""
    if k < 1 or k_security < 1:
        raise ValueError(f"k and K_s must be >= 1, got k={k} K_s={k_security}")
    if k_security == 1:
        return k
    return math.ceil(k / (k_security - 1)) - 1


def normal_block_count(k: int, k_reliability: int, n_clouds: int) -> int:
    """Blocks scheduled deterministically: ``fair_share * N``."""
    return fair_share(k, k_reliability) * n_clouds


def max_block_count(k: int, k_security: int, n_clouds: int) -> int:
    """Total distinct blocks the code must be able to produce."""
    return max_blocks_per_cloud(k, k_security) * n_clouds


def fair_share_assignment(
    cloud_ids: Sequence[str], k: int, k_reliability: int
) -> Dict[str, List[int]]:
    """Deterministic even partition of normal parity blocks to clouds.

    Cloud ``i`` receives block indices
    ``[i * share, (i + 1) * share)`` — the "Basic Upload Scheduling" of
    §6.2.  Deterministic so every device derives the same layout.
    """
    share = fair_share(k, k_reliability)
    return {
        cloud_id: list(range(i * share, (i + 1) * share))
        for i, cloud_id in enumerate(cloud_ids)
    }


def rebalance_on_remove(
    locations: Dict[int, str],
    removed_cloud: str,
    remaining_clouds: Sequence[str],
    k: int,
    k_reliability: int,
    k_security: int,
) -> Dict[int, str]:
    """New locations after dropping a cloud (paper §6.2, remove CCS).

    The removed cloud's blocks are redistributed to the remaining clouds
    with the fewest blocks, never exceeding the (recomputed) security
    cap.  Raises ValueError when the remaining clouds cannot legally
    absorb the fair-share requirement.
    """
    if not remaining_clouds:
        raise ValueError("cannot remove the last cloud")
    cap = max_blocks_per_cloud(k, k_security)
    new_locations = {
        idx: cloud for idx, cloud in locations.items() if cloud != removed_cloud
    }
    counts = {cloud: 0 for cloud in remaining_clouds}
    for cloud in new_locations.values():
        if cloud in counts:
            counts[cloud] += 1
    moved = [idx for idx, cloud in locations.items() if cloud == removed_cloud]
    for idx in sorted(moved):
        target = min(
            (c for c in remaining_clouds if counts[c] < cap),
            key=lambda c: (counts[c], remaining_clouds.index(c)),
            default=None,
        )
        if target is None:
            raise ValueError(
                "security cap prevents redistributing all blocks; "
                "add a cloud or relax K_s"
            )
        new_locations[idx] = target
        counts[target] += 1
    return new_locations


def rebalance_on_add(
    locations: Dict[int, str],
    new_cloud: str,
    all_clouds: Sequence[str],
    k: int,
    k_reliability: int,
    n: Optional[int] = None,
) -> Dict[int, str]:
    """New locations after adding a cloud (paper §6.2, add CCS).

    The new cloud takes its fair share by adopting block indices from
    the most-loaded clouds; donors simply delete those blocks (the new
    cloud's copies are re-encoded from any k available blocks).

    Only clouds holding *more* than their fair share may donate —
    stealing from a minimal donor would drop it below ``share`` and
    break the any-``K_r``-clouds reconstruction guarantee.  When every
    cloud is already at the minimum and the code's block count ``n`` is
    known, fresh unused parity indices are minted for the new cloud
    instead (the non-systematic code can produce any index < n).  With
    ``n=None`` no safe source exists, so as a last resort the legacy
    steal-from-the-most-loaded behaviour applies.
    """
    share = fair_share(k, k_reliability)
    counts: Dict[str, int] = {}
    for cloud in locations.values():
        counts[cloud] = counts.get(cloud, 0) + 1
    new_locations = dict(locations)
    for _ in range(share):
        donor = max(
            (c for c in counts if counts.get(c, 0) > share),
            key=lambda c: counts[c],
            default=None,
        )
        if donor is None and n is not None:
            fresh = next(
                (idx for idx in range(n) if idx not in new_locations), None
            )
            if fresh is None:
                break
            new_locations[fresh] = new_cloud
            continue
        if donor is None:
            donor = max(
                (c for c in counts if counts.get(c, 0) > 0),
                key=lambda c: counts[c],
                default=None,
            )
        if donor is None:
            break
        victim_idx = max(
            idx for idx, cloud in new_locations.items() if cloud == donor
        )
        new_locations[victim_idx] = new_cloud
        counts[donor] -= 1
    return new_locations
