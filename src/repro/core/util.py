"""Small coordination helpers shared by control- and data-plane code."""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Tuple

from ..simkernel import AllOf, Simulator

__all__ = ["gather_safe", "Outcome"]

Outcome = Tuple[bool, Any]  # (succeeded, value-or-exception)


def _wrap(generator: Generator) -> Generator:
    try:
        value = yield from generator
    except Exception as exc:
        return (False, exc)
    return (True, value)


def gather_safe(sim: Simulator,
                generators: Iterable[Generator]) -> Generator:
    """Run generators concurrently; collect per-task (ok, value) outcomes.

    Unlike :class:`AllOf`, individual failures do not abort the batch —
    exactly what multi-cloud fan-out needs, where some clouds are
    expected to be slow or down.  Results preserve input order.
    """
    processes = [sim.process(_wrap(g)) for g in generators]
    if not processes:
        return []
    outcomes: List[Outcome] = yield AllOf(sim, processes)
    return outcomes
