"""The UniDrive metadata model (paper §5.1).

All metadata lives in a single logical document with three parts:

* **SyncFolderImage** — the file-hierarchy image: one entry per file,
  each holding the current *snapshot* (path, timestamp, size, ordered
  segment IDs) plus any conflict snapshots retained for the user;
* **segment pool** — one record per unique content segment: its size,
  erasure-code geometry, reference count, and the block→cloud map
  (Cloud-ID fields, filled in asynchronously as uploads complete);
* **ChangedFileList** — local, never uploaded: the changes accumulated
  since the last successful synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "FileSnapshot",
    "FileEntry",
    "SegmentRecord",
    "SyncFolderImage",
    "VersionStamp",
]


@dataclass
class FileSnapshot:
    """All metadata of one file at one point in time (paper Figure 6)."""

    path: str
    timestamp: float  # originating device's mtime
    size: int
    segment_ids: List[str] = field(default_factory=list)
    device: str = ""  # which device produced this snapshot

    def signature(self) -> tuple:
        """Value identity used by merge/diff (content, not mtime)."""
        return (self.path, self.size, tuple(self.segment_ids))

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "timestamp": self.timestamp,
            "size": self.size,
            "segment_ids": list(self.segment_ids),
            "device": self.device,
        }

    @staticmethod
    def from_dict(data: dict) -> "FileSnapshot":
        return FileSnapshot(
            path=data["path"],
            timestamp=data["timestamp"],
            size=data["size"],
            segment_ids=list(data["segment_ids"]),
            device=data.get("device", ""),
        )


@dataclass
class FileEntry:
    """One file in the image: its current snapshot + retained conflicts."""

    current: FileSnapshot
    conflicts: List[FileSnapshot] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "current": self.current.to_dict(),
            "conflicts": [snapshot.to_dict() for snapshot in self.conflicts],
        }

    @staticmethod
    def from_dict(data: dict) -> "FileEntry":
        return FileEntry(
            current=FileSnapshot.from_dict(data["current"]),
            conflicts=[
                FileSnapshot.from_dict(entry) for entry in data["conflicts"]
            ],
        )


@dataclass
class SegmentRecord:
    """One unique segment in the pool, with its block placement map."""

    segment_id: str
    size: int
    n: int  # total blocks the code can produce
    k: int  # blocks needed to decode
    locations: Dict[int, str] = field(default_factory=dict)  # index -> cloud
    refcount: int = 0
    #: index -> SHA-1 hex of the block's bytes, recorded at encode time.
    #: Blocks are deterministic functions of the segment content (the
    #: generator matrix is fixed by (n, k)), so every device derives the
    #: same hash for the same index — the map merges trivially.  Absent
    #: entries (pre-durability metadata) simply skip verification.
    block_hashes: Dict[int, str] = field(default_factory=dict)
    #: Redundancy debt: block indices a brownout commit could not place
    #: (fewer than n clouds writable).  The segment stays readable
    #: (>= k blocks landed) but below target redundancy until
    #: ``core.scrub`` re-encodes and places exactly these indices, then
    #: clears the list.  Empty for every commit made outside a
    #: brownout, and omitted from the serialized form when empty so
    #: pre-degradation metadata bytes are unchanged.
    debt: List[int] = field(default_factory=list)

    def clouds_holding(self) -> List[str]:
        return sorted(set(self.locations.values()))

    def blocks_on(self, cloud_id: str) -> List[int]:
        return sorted(
            idx for idx, cloud in self.locations.items() if cloud == cloud_id
        )

    def block_name(self, index: int) -> str:
        """Cloud-side file name: segment ID + block sequence number."""
        return f"{self.segment_id}.{index}"

    def to_dict(self) -> dict:
        out = {
            "segment_id": self.segment_id,
            "size": self.size,
            "n": self.n,
            "k": self.k,
            "locations": {str(i): c for i, c in sorted(self.locations.items())},
            "refcount": self.refcount,
            "block_hashes": {
                str(i): h for i, h in sorted(self.block_hashes.items())
            },
        }
        if self.debt:
            out["debt"] = sorted(self.debt)
        return out

    @staticmethod
    def from_dict(data: dict) -> "SegmentRecord":
        return SegmentRecord(
            segment_id=data["segment_id"],
            size=data["size"],
            n=data["n"],
            k=data["k"],
            locations={int(i): c for i, c in data["locations"].items()},
            refcount=data["refcount"],
            block_hashes={
                int(i): h
                for i, h in data.get("block_hashes", {}).items()
            },
            debt=[int(i) for i in data.get("debt", [])],
        )


@dataclass
class VersionStamp:
    """Content of the small version file used for cheap update checks.

    ``counter`` is a logical version (monotonically increasing across
    commits); ``device`` identifies the committer.  No wall-clock
    comparison is ever made across devices.
    """

    counter: int = 0
    device: str = ""

    def newer_than(self, other: "VersionStamp") -> bool:
        return self.counter > other.counter

    def differs_from(self, other: "VersionStamp") -> bool:
        return self.counter != other.counter or self.device != other.device

    def to_dict(self) -> dict:
        return {"counter": self.counter, "device": self.device}

    @staticmethod
    def from_dict(data: dict) -> "VersionStamp":
        return VersionStamp(counter=data["counter"], device=data["device"])


class SyncFolderImage:
    """The single metadata document replicated to every cloud."""

    def __init__(self, device: str = ""):
        self.version = VersionStamp(0, device)
        self.files: Dict[str, FileEntry] = {}
        self.segments: Dict[str, SegmentRecord] = {}

    # -- file operations ----------------------------------------------------

    def upsert_file(self, snapshot: FileSnapshot) -> None:
        """Insert/replace a file entry, maintaining segment refcounts."""
        existing = self.files.get(snapshot.path)
        if existing is not None:
            self._unref(existing.current.segment_ids)
        self.files[snapshot.path] = FileEntry(
            current=snapshot,
            conflicts=existing.conflicts if existing else [],
        )
        self._ref(snapshot.segment_ids)

    def delete_file(self, path: str) -> None:
        entry = self.files.pop(path, None)
        if entry is not None:
            self._unref(entry.current.segment_ids)
            for conflict in entry.conflicts:
                self._unref(conflict.segment_ids)

    def add_conflict(self, path: str, snapshot: FileSnapshot) -> None:
        """Retain a losing update for later user resolution (paper §5.2)."""
        entry = self.files.get(path)
        if entry is None:
            self.upsert_file(snapshot)
            return
        entry.conflicts.append(snapshot)
        self._ref(snapshot.segment_ids)

    def resolve_conflict(self, path: str, keep_conflict_index: Optional[int] = None) -> None:
        """Drop retained conflicts; optionally promote one to current.

        Idempotent: resolution ops replicate through the delta log, and
        two devices resolving the same path concurrently replay each
        other's op on an entry whose conflict list is already empty.  A
        ``keep_conflict_index`` that no longer exists (stale against the
        current conflict list) makes the whole op a no-op rather than
        corrupting the entry or raising mid-replay.
        """
        entry = self.files.get(path)
        if entry is None:
            return
        if keep_conflict_index is not None and not (
            0 <= keep_conflict_index < len(entry.conflicts)
        ):
            return  # already applied (or never valid): nothing to do
        conflicts, entry.conflicts = entry.conflicts, []
        if keep_conflict_index is not None:
            winner = conflicts.pop(keep_conflict_index)
            self._unref(entry.current.segment_ids)
            entry.current = winner
            self._ref(winner.segment_ids)
            # The promoted snapshot's pool reference carries over 1:1.
            self._unref(winner.segment_ids)
        for leftover in conflicts:
            self._unref(leftover.segment_ids)

    # -- segment pool ----------------------------------------------------

    def add_segment(self, record: SegmentRecord) -> None:
        existing = self.segments.get(record.segment_id)
        if existing is None:
            self.segments[record.segment_id] = record
        else:
            # Same content chunked twice: merge placements conservatively.
            existing.locations.update(record.locations)
            existing.block_hashes.update(record.block_hashes)
            # Debt is the union of both sides' unplaced indices, minus
            # anything a placement (either side's, or a scrub repay)
            # has since landed — a placed index is never owed.
            if existing.debt or record.debt:
                existing.debt = sorted(
                    (set(existing.debt) | set(record.debt))
                    - set(existing.locations)
                )

    def set_block_location(self, segment_id: str, index: int, cloud_id: str) -> None:
        """The asynchronous Cloud-ID callback after a block upload."""
        record = self.segments.get(segment_id)
        if record is None:
            raise KeyError(f"unknown segment {segment_id}")
        if not 0 <= index < record.n:
            raise IndexError(f"block index {index} outside [0, {record.n})")
        record.locations[index] = cloud_id
        if record.debt and index in record.debt:
            record.debt.remove(index)

    def garbage_segments(self) -> List[SegmentRecord]:
        """Segments no file references; their cloud blocks can be deleted."""
        return [seg for seg in self.segments.values() if seg.refcount <= 0]

    def drop_segment(self, segment_id: str) -> None:
        self.segments.pop(segment_id, None)

    def _ref(self, segment_ids: List[str]) -> None:
        for segment_id in segment_ids:
            record = self.segments.get(segment_id)
            if record is not None:
                record.refcount += 1

    def _unref(self, segment_ids: List[str]) -> None:
        for segment_id in segment_ids:
            record = self.segments.get(segment_id)
            if record is not None:
                record.refcount -= 1

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version.to_dict(),
            "files": {
                path: entry.to_dict() for path, entry in sorted(self.files.items())
            },
            "segments": {
                sid: seg.to_dict() for sid, seg in sorted(self.segments.items())
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "SyncFolderImage":
        image = SyncFolderImage()
        image.version = VersionStamp.from_dict(data["version"])
        image.files = {
            path: FileEntry.from_dict(entry)
            for path, entry in data["files"].items()
        }
        image.segments = {
            sid: SegmentRecord.from_dict(seg)
            for sid, seg in data["segments"].items()
        }
        return image

    def copy(self) -> "SyncFolderImage":
        return SyncFolderImage.from_dict(self.to_dict())
