"""Data block scheduling (paper §6.2) — UniDrive's networking core.

Upload policy, per batch of files:

* **Basic scheduling** — each segment's ``fair_share * N`` normal parity
  blocks are partitioned evenly and deterministically across clouds.
* **Over-provisioning** — a cloud that exhausts its fair share keeps
  pulling *extra* parity blocks (never exceeding the per-cloud security
  cap), so network use is proportional to observed speed and fast clouds
  are never idle while slow ones lag.
* **Two-phase batch order** — *availability-first*: every connection
  works on the earliest file that is not yet available (k blocks per
  segment uploaded); only when all files are available does the
  *reliability-second* phase top up outstanding fair shares.
* **Dynamic, pull-based dispatch** — workers (one per connection) ask
  for the next block when idle, so faster clouds naturally transfer
  more; completed transfers feed the in-channel
  :class:`~repro.core.probing.ThroughputEstimator`.

Download policy: any k blocks per segment suffice; idle connections pull
block indices their cloud holds, never requesting more than k per
segment, with files strictly in order.

Setting ``over_provision=False`` and ``dynamic=False`` turns the
scheduler into the RACS/DepSky-style **multi-cloud benchmark** baseline
the paper compares against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cloud import CloudAPI, CloudError
from ..simkernel import AllOf, Simulator
from .config import UniDriveConfig
from .metadata import SegmentRecord
from .pipeline import BlockPipeline
from .placement import fair_share, fair_share_assignment, max_blocks_per_cloud
from .probing import DOWNLOAD, UPLOAD, ThroughputEstimator

__all__ = [
    "UploadScheduler",
    "DownloadScheduler",
    "FileUpload",
    "FileUploadReport",
    "UploadBatchReport",
    "FileDownload",
    "FileDownloadReport",
    "DownloadBatchReport",
]


# ---------------------------------------------------------------------------
# Inputs and reports
# ---------------------------------------------------------------------------


@dataclass
class FileUpload:
    """One file to upload: its segments (records + plaintext data)."""

    path: str
    segments: List[Tuple[SegmentRecord, bytes]]  # (record, segment bytes)

    @property
    def size(self) -> int:
        return sum(record.size for record, _ in self.segments)


@dataclass
class FileUploadReport:
    path: str
    size: int
    started_at: float
    available_at: Optional[float] = None
    reliable_at: Optional[float] = None
    degraded: bool = False  # a cloud died; fair shares incomplete
    blocks_per_cloud: Dict[str, int] = field(default_factory=dict)

    @property
    def available_duration(self) -> Optional[float]:
        if self.available_at is None:
            return None
        return self.available_at - self.started_at


@dataclass
class UploadBatchReport:
    files: List[FileUploadReport]
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_requests: int = 0

    @property
    def all_available(self) -> bool:
        return all(f.available_at is not None for f in self.files)

    @property
    def last_available_at(self) -> Optional[float]:
        times = [f.available_at for f in self.files]
        if any(t is None for t in times):
            return None
        return max(times) if times else self.started_at

    def report_for(self, path: str) -> FileUploadReport:
        for report in self.files:
            if report.path == path:
                return report
        raise KeyError(path)


@dataclass
class FileDownload:
    """One file to download: ordered segment records from metadata."""

    path: str
    segments: List[SegmentRecord]

    @property
    def size(self) -> int:
        return sum(record.size for record in self.segments)


@dataclass
class FileDownloadReport:
    path: str
    size: int
    started_at: float
    completed_at: Optional[float] = None
    content: Optional[bytes] = None

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class DownloadBatchReport:
    files: List[FileDownloadReport]
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_requests: int = 0

    @property
    def all_completed(self) -> bool:
        return all(f.completed_at is not None for f in self.files)

    def report_for(self, path: str) -> FileDownloadReport:
        for report in self.files:
            if report.path == path:
                return report
        raise KeyError(path)


# ---------------------------------------------------------------------------
# Upload scheduling
# ---------------------------------------------------------------------------


class _SegmentUploadState:
    """Book-keeping for one unique segment within a batch."""

    def __init__(self, record: SegmentRecord, data: bytes,
                 cloud_ids: Sequence[str], config: UniDriveConfig):
        self.record = record
        self.data = data
        self.k = record.k
        self.cap = max_blocks_per_cloud(record.k, config.k_security)
        share = fair_share(record.k, config.k_reliability)
        assignment = fair_share_assignment(cloud_ids, record.k,
                                           config.k_reliability)
        self.fair: Dict[str, deque] = {
            cid: deque(indices) for cid, indices in assignment.items()
        }
        self.fair_targets: Dict[str, int] = {cid: share for cid in cloud_ids}
        normal_count = share * len(cloud_ids)
        self.extras = deque(range(normal_count, record.n))
        self.uploaded: Dict[int, str] = {}
        self.inflight: Dict[int, str] = {}
        self.fair_inflight: set = set()
        self.per_cloud: Dict[str, int] = {cid: 0 for cid in cloud_ids}
        self.fair_uploaded: Dict[str, int] = {cid: 0 for cid in cloud_ids}
        self.degraded = False

    # -- predicates --------------------------------------------------------

    @property
    def assignment_satisfied(self) -> bool:
        """Enough blocks uploaded or in flight to promise availability."""
        return len(self.uploaded) + len(self.inflight) >= self.k

    @property
    def available(self) -> bool:
        return len(self.uploaded) >= self.k

    def fair_done(self, cloud_id: str) -> bool:
        return self.fair_uploaded.get(cloud_id, 0) >= self.fair_targets.get(
            cloud_id, 0
        )

    def fair_pending(self, cloud_id: str) -> bool:
        return bool(self.fair.get(cloud_id))

    @property
    def reliable(self) -> bool:
        return all(
            self.fair_done(cid) for cid in self.fair_targets
        ) and not self.degraded

    def any_fair_pending(self) -> bool:
        return any(self.fair.values())

    @property
    def fair_outstanding(self) -> bool:
        """Fair-share work still queued or in flight anywhere."""
        return self.any_fair_pending() or bool(self.fair_inflight)

    def cap_room(self, cloud_id: str) -> bool:
        return self.per_cloud.get(cloud_id, 0) < self.cap

    # -- transitions -------------------------------------------------------

    def take_fair(self, cloud_id: str) -> Optional[int]:
        queue = self.fair.get(cloud_id)
        if not queue or not self.cap_room(cloud_id):
            return None
        index = queue.popleft()
        self._mark_inflight(index, cloud_id)
        self.fair_inflight.add(index)
        return index

    def take_extra(self, cloud_id: str) -> Optional[int]:
        if not self.extras or not self.cap_room(cloud_id):
            return None
        index = self.extras.popleft()
        self._mark_inflight(index, cloud_id)
        return index

    def _mark_inflight(self, index: int, cloud_id: str) -> None:
        self.inflight[index] = cloud_id
        self.per_cloud[cloud_id] = self.per_cloud.get(cloud_id, 0) + 1

    def complete(self, index: int, cloud_id: str, is_fair: bool) -> None:
        self.inflight.pop(index, None)
        self.fair_inflight.discard(index)
        self.uploaded[index] = cloud_id
        # The asynchronous Cloud-ID callback (paper §5.1): the metadata
        # record learns where the block landed as soon as it landed.
        self.record.locations[index] = cloud_id
        if is_fair:
            self.fair_uploaded[cloud_id] = self.fair_uploaded.get(cloud_id, 0) + 1

    def fail(self, index: int, cloud_id: str, is_fair: bool,
             cloud_dead: bool) -> None:
        """Return the index to its pool (or the extras pool if the cloud
        died and can no longer take its fair share)."""
        self.inflight.pop(index, None)
        self.fair_inflight.discard(index)
        self.per_cloud[cloud_id] = max(0, self.per_cloud.get(cloud_id, 0) - 1)
        if is_fair and not cloud_dead:
            self.fair[cloud_id].appendleft(index)
        else:
            if is_fair:
                self.degraded = True
            self.extras.appendleft(index)

    def abandon_cloud(self, cloud_id: str) -> None:
        """A cloud died: its queued fair indices become extras."""
        queue = self.fair.get(cloud_id)
        if queue:
            self.degraded = True
            while queue:
                self.extras.appendleft(queue.pop())


@dataclass
class _UploadTask:
    state: _SegmentUploadState
    index: int
    is_fair: bool


class UploadScheduler:
    """Schedules one batch of file uploads over the multi-cloud."""

    def __init__(
        self,
        sim: Simulator,
        connections: Sequence[CloudAPI],
        pipeline: BlockPipeline,
        config: UniDriveConfig,
        estimator: Optional[ThroughputEstimator] = None,
        over_provision: bool = True,
        dynamic: bool = True,
        on_block_uploaded: Optional[Callable[[str, int, str], None]] = None,
    ):
        if not connections:
            raise ValueError("need at least one cloud connection")
        self.sim = sim
        self.connections = list(connections)
        self.cloud_ids = [c.cloud_id for c in self.connections]
        self.pipeline = pipeline
        self.config = config
        self.estimator = estimator or ThroughputEstimator()
        self.over_provision = over_provision
        self.dynamic = dynamic
        self.on_block_uploaded = on_block_uploaded
        # Per-batch state, reset in run_batch().
        self._files: List[FileUpload] = []
        self._reports: Dict[str, FileUploadReport] = {}
        self._states: Dict[str, _SegmentUploadState] = {}
        self._file_segments: Dict[str, List[_SegmentUploadState]] = {}
        self._inflight_total = 0
        self._dead: Dict[str, int] = {}
        self._failed_requests = 0
        self._wake = None

    # -- public API -------------------------------------------------------

    def run_batch(self, files: Sequence[FileUpload]):
        """Upload a batch; generator returns an :class:`UploadBatchReport`."""
        started = self.sim.now
        self._files = list(files)
        self._reports = {}
        self._states = {}
        self._file_segments = {}
        self._inflight_total = 0
        self._dead = {cid: 0 for cid in self.cloud_ids}
        self._failed_requests = 0
        self._wake = self.sim.event()
        for file in self._files:
            self._reports[file.path] = FileUploadReport(
                path=file.path, size=file.size, started_at=self.sim.now,
                blocks_per_cloud={cid: 0 for cid in self.cloud_ids},
            )
            states = []
            for record, data in file.segments:
                state = self._states.get(record.segment_id)
                if state is None:
                    state = _SegmentUploadState(
                        record, data, self.cloud_ids, self.config
                    )
                    self._states[record.segment_id] = state
                states.append(state)
            self._file_segments[file.path] = states
        workers = []
        for conn in self.connections:
            for _slot in range(self.config.connections_per_cloud):
                workers.append(self.sim.process(self._worker(conn)))
        if workers:
            yield AllOf(self.sim, workers)
        self._refresh_file_reports(final=True)
        return UploadBatchReport(
            files=[self._reports[f.path] for f in self._files],
            started_at=started,
            finished_at=self.sim.now,
            failed_requests=self._failed_requests,
        )

    # -- worker loop -------------------------------------------------------

    def _worker(self, conn: CloudAPI):
        cloud_id = conn.cloud_id
        while True:
            task = self._next_task(cloud_id)
            if task is None:
                if self._done():
                    return
                yield self._wake
                continue
            state, index = task.state, task.index
            block = self.pipeline.code.encode_block(state.data, index)
            path = self.pipeline.block_path(state.record, index)
            self._inflight_total += 1
            start = self.sim.now
            try:
                yield from conn.upload(path, block)
            except CloudError:
                self._inflight_total -= 1
                self._failed_requests += 1
                self.estimator.record_failure(cloud_id, UPLOAD)
                dead = self._note_failure(cloud_id)
                state.fail(index, cloud_id, task.is_fair, cloud_dead=dead)
                self._pulse()
                continue
            self._inflight_total -= 1
            self._dead[cloud_id] = 0
            self.estimator.record(
                cloud_id, UPLOAD, len(block), self.sim.now - start
            )
            state.complete(index, cloud_id, task.is_fair)
            if self.on_block_uploaded is not None:
                self.on_block_uploaded(
                    state.record.segment_id, index, cloud_id
                )
            self._refresh_file_reports()
            self._bump_block_count(state, cloud_id)
            self._pulse()

    # -- dispatch policy ----------------------------------------------------

    def _next_task(self, cloud_id: str,
                   peek: bool = False) -> Optional[_UploadTask]:
        """Pick (and unless ``peek``, commit) the next block for a cloud.

        The selection walks the same decision ladder in both modes, so a
        successful peek guarantees the subsequent commit would succeed.
        """
        if self._is_dead(cloud_id):
            return None

        def fair(state: _SegmentUploadState) -> Optional[_UploadTask]:
            if not state.fair_pending(cloud_id) or not state.cap_room(cloud_id):
                return None
            if peek:
                return _UploadTask(state, -1, is_fair=True)
            return _UploadTask(state, state.take_fair(cloud_id), is_fair=True)

        def extra(state: _SegmentUploadState) -> Optional[_UploadTask]:
            # Over-provisioned blocks go only to clouds that already
            # *finished transferring* their own fair share of this
            # segment (paper §6.2).
            if not state.fair_done(cloud_id):
                return None
            if not state.extras or not state.cap_room(cloud_id):
                return None
            if peek:
                return _UploadTask(state, -1, is_fair=False)
            return _UploadTask(state, state.take_extra(cloud_id),
                               is_fair=False)

        # Phase A: availability-first, files strictly in order.  Every
        # cloud keeps pulling blocks for the earliest file that is not
        # yet *available* (k blocks actually uploaded) — maximal
        # parallel transfer, with fast clouds hedging via extras.
        for file in self._files:
            for state in self._file_segments[file.path]:
                if state.available:
                    continue
                task = fair(state)
                if task is not None:
                    return task
                if self.over_provision:
                    task = extra(state)
                    if task is not None:
                        return task
            if not self.dynamic:
                # Benchmark baseline: finish this file's fair shares
                # before touching the next file (no phase split).
                for state in self._file_segments[file.path]:
                    task = fair(state)
                    if task is not None:
                        return task
                if any(
                    not s.available or s.any_fair_pending()
                    for s in self._file_segments[file.path]
                ):
                    return None
        # Phase B: reliability-second — top up outstanding fair shares.
        for file in self._files:
            for state in self._file_segments[file.path]:
                task = fair(state)
                if task is not None:
                    return task
        # Over-provision while slower clouds still owe fair shares
        # (stop once the slowest cloud finished its fair share, §6.2).
        if self.over_provision and self.dynamic:
            for file in self._files:
                for state in self._file_segments[file.path]:
                    if not state.fair_outstanding:
                        continue
                    task = extra(state)
                    if task is not None:
                        return task
        return None

    # -- progress & termination -------------------------------------------

    def _refresh_file_reports(self, final: bool = False) -> None:
        for file in self._files:
            report = self._reports[file.path]
            states = self._file_segments[file.path]
            if report.available_at is None and all(
                s.available for s in states
            ):
                report.available_at = self.sim.now
            if report.reliable_at is None and all(
                s.reliable for s in states
            ):
                report.reliable_at = self.sim.now
            if final:
                report.degraded = any(s.degraded for s in states)

    def _bump_block_count(self, state: _SegmentUploadState,
                          cloud_id: str) -> None:
        for file in self._files:
            if state in self._file_segments[file.path]:
                counts = self._reports[file.path].blocks_per_cloud
                counts[cloud_id] = counts.get(cloud_id, 0) + 1

    def _note_failure(self, cloud_id: str) -> bool:
        """Count a failure; returns True once the cloud is declared dead."""
        self._dead[cloud_id] += 1
        if self._dead[cloud_id] == self.config.cloud_failure_threshold:
            for state in self._states.values():
                state.abandon_cloud(cloud_id)
            return True
        return self._is_dead(cloud_id)

    def _is_dead(self, cloud_id: str) -> bool:
        return self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold

    def _done(self) -> bool:
        if self._inflight_total > 0:
            return False
        return all(
            self._next_task(cid, peek=True) is None for cid in self.cloud_ids
        )

    def _pulse(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()


# ---------------------------------------------------------------------------
# Download scheduling
# ---------------------------------------------------------------------------


class _SegmentDownloadState:
    """Book-keeping for one segment being fetched."""

    def __init__(self, record: SegmentRecord):
        self.record = record
        self.k = record.k
        self.blocks: Dict[int, bytes] = {}
        self.inflight: Dict[int, str] = {}
        self.exhausted: set = set()  # (index, cloud) pairs that failed

    @property
    def complete(self) -> bool:
        return len(self.blocks) >= self.k

    @property
    def saturated(self) -> bool:
        """True when no further request should be issued."""
        return len(self.blocks) + len(self.inflight) >= self.k

    def candidate_index(self, cloud_id: str) -> Optional[int]:
        for index in self.record.blocks_on(cloud_id):
            if index in self.blocks or index in self.inflight:
                continue
            if (index, cloud_id) in self.exhausted:
                continue
            return index
        return None


class DownloadScheduler:
    """Schedules one batch of file downloads from the multi-cloud."""

    def __init__(
        self,
        sim: Simulator,
        connections: Sequence[CloudAPI],
        pipeline: BlockPipeline,
        config: UniDriveConfig,
        estimator: Optional[ThroughputEstimator] = None,
        dynamic: bool = True,
    ):
        if not connections:
            raise ValueError("need at least one cloud connection")
        self.sim = sim
        self.connections = list(connections)
        self.pipeline = pipeline
        self.config = config
        self.estimator = estimator or ThroughputEstimator()
        self.dynamic = dynamic
        self._files: List[FileDownload] = []
        self._reports: Dict[str, FileDownloadReport] = {}
        self._states: Dict[str, _SegmentDownloadState] = {}
        self._file_segments: Dict[str, List[_SegmentDownloadState]] = {}
        self._inflight_total = 0
        self._dead: Dict[str, int] = {}
        self._failed_requests = 0
        self._wake = None

    def run_batch(self, files: Sequence[FileDownload]):
        """Fetch a batch; generator returns a :class:`DownloadBatchReport`.

        Files that cannot be reconstructed (too many clouds down) finish
        with ``content=None`` rather than blocking the batch.
        """
        started = self.sim.now
        self._files = list(files)
        self._reports = {}
        self._states = {}
        self._file_segments = {}
        self._inflight_total = 0
        self._dead = {c.cloud_id: 0 for c in self.connections}
        self._failed_requests = 0
        self._wake = self.sim.event()
        for file in self._files:
            self._reports[file.path] = FileDownloadReport(
                path=file.path, size=file.size, started_at=self.sim.now
            )
            states = []
            for record in file.segments:
                state = self._states.get(record.segment_id)
                if state is None:
                    state = _SegmentDownloadState(record)
                    self._states[record.segment_id] = state
                states.append(state)
            self._file_segments[file.path] = states
        workers = []
        for conn in self._ranked_connections():
            for _slot in range(self.config.connections_per_cloud):
                workers.append(self.sim.process(self._worker(conn)))
        if workers:
            yield AllOf(self.sim, workers)
        for file in self._files:
            report = self._reports[file.path]
            states = self._file_segments[file.path]
            if all(s.complete for s in states):
                contents = [
                    self.pipeline.decode_segment(s.record, s.blocks)
                    for s in states
                ]
                report.content = self.pipeline.assemble_file(contents)
                if report.completed_at is None:
                    report.completed_at = self.sim.now
        return DownloadBatchReport(
            files=[self._reports[f.path] for f in self._files],
            started_at=started,
            finished_at=self.sim.now,
            failed_requests=self._failed_requests,
        )

    def _ranked_connections(self) -> List[CloudAPI]:
        """Fastest clouds first so their workers ask first (paper §6.2)."""
        if not self.dynamic:
            return list(self.connections)
        order = self.estimator.rank(
            [c.cloud_id for c in self.connections], DOWNLOAD
        )
        by_id = {c.cloud_id: c for c in self.connections}
        return [by_id[cid] for cid in order]

    def _worker(self, conn: CloudAPI):
        cloud_id = conn.cloud_id
        while True:
            pick = self._next_request(cloud_id)
            if pick is None:
                if self._done():
                    return
                yield self._wake
                continue
            state, index = pick
            state.inflight[index] = cloud_id
            self._inflight_total += 1
            path = self.pipeline.block_path(state.record, index)
            start = self.sim.now
            try:
                block = yield from conn.download(path)
            except CloudError:
                self._inflight_total -= 1
                self._failed_requests += 1
                state.inflight.pop(index, None)
                state.exhausted.add((index, cloud_id))
                self.estimator.record_failure(cloud_id, DOWNLOAD)
                self._dead[cloud_id] += 1
                self._pulse()
                continue
            self._inflight_total -= 1
            self._dead[cloud_id] = 0
            self.estimator.record(
                cloud_id, DOWNLOAD, len(block), self.sim.now - start
            )
            state.inflight.pop(index, None)
            state.blocks[index] = block
            self._mark_progress()
            self._pulse()

    def _next_request(self, cloud_id: str):
        if self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold:
            return None
        for file in self._files:
            for state in self._file_segments[file.path]:
                if state.saturated:
                    continue
                index = state.candidate_index(cloud_id)
                if index is None:
                    continue
                if self.dynamic and self._defer_to_faster(state, cloud_id):
                    continue
                return (state, index)
            if not self.dynamic:
                # Static baseline: strictly finish this file first.
                if not all(
                    s.complete for s in self._file_segments[file.path]
                ):
                    return None
        return None

    def _defer_to_faster(self, state: _SegmentDownloadState,
                         cloud_id: str) -> bool:
        """The paper's sorted assignment: the next block goes to the
        idle connection of the *fastest* cloud.  A slower cloud backs
        off whenever strictly-faster clouds can still supply all the
        blocks this segment is missing."""
        needed = state.k - len(state.blocks) - len(state.inflight)
        if needed <= 0:
            return True
        mine = self.estimator.estimate(cloud_id, DOWNLOAD)
        faster_supply = 0
        for index, holder in state.record.locations.items():
            if holder == cloud_id:
                continue
            if index in state.blocks or index in state.inflight:
                continue
            if (index, holder) in state.exhausted:
                continue
            if self._dead.get(holder, 0) >= self.config.cloud_failure_threshold:
                continue
            if self.estimator.estimate(holder, DOWNLOAD) > mine:
                faster_supply += 1
        return faster_supply >= needed

    def _mark_progress(self) -> None:
        for file in self._files:
            report = self._reports[file.path]
            if report.completed_at is None and all(
                s.complete for s in self._file_segments[file.path]
            ):
                report.completed_at = self.sim.now

    def _done(self) -> bool:
        if self._inflight_total > 0:
            return False
        return all(
            self._next_request(c.cloud_id) is None for c in self.connections
        )

    def _pulse(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()
