"""Data block scheduling (paper §6.2) — UniDrive's networking core.

Upload policy, per batch of files:

* **Basic scheduling** — each segment's ``fair_share * N`` normal parity
  blocks are partitioned evenly and deterministically across clouds.
* **Over-provisioning** — a cloud that exhausts its fair share keeps
  pulling *extra* parity blocks (never exceeding the per-cloud security
  cap), so network use is proportional to observed speed and fast clouds
  are never idle while slow ones lag.
* **Two-phase batch order** — *availability-first*: every connection
  works on the earliest file that is not yet available (k blocks per
  segment uploaded); only when all files are available does the
  *reliability-second* phase top up outstanding fair shares.
* **Dynamic, pull-based dispatch** — workers (one per connection) ask
  for the next block when idle, so faster clouds naturally transfer
  more; completed transfers feed the in-channel
  :class:`~repro.core.probing.ThroughputEstimator`.

Download policy: any k blocks per segment suffice; idle connections pull
block indices their cloud holds, never requesting more than k per
segment, with files strictly in order.

Setting ``over_provision=False`` and ``dynamic=False`` turns the
scheduler into the RACS/DepSky-style **multi-cloud benchmark** baseline
the paper compares against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import math

from ..cloud import CloudAPI, CloudError, NotFoundError
from ..obs import METRICS, TELEMETRY, TRACE
from ..obs.tracer import ctx_attrs as _ctx_attrs
from ..simkernel import AllOf, AnyOf, Simulator
from .config import UniDriveConfig
from .degrade import DeadlineBudget, DegradeController
from .metadata import SegmentRecord
from .pipeline import BlockPipeline, block_hash
from .placement import fair_share, fair_share_assignment, max_blocks_per_cloud
from .probing import DOWNLOAD, UPLOAD, ThroughputEstimator
from .retry import RETRY, RetryPolicy

__all__ = [
    "UploadScheduler",
    "DownloadScheduler",
    "FileUpload",
    "FileUploadReport",
    "UploadBatchReport",
    "FileDownload",
    "FileDownloadReport",
    "DownloadBatchReport",
]


def _record_block_metrics(estimator, conn, cloud_id, direction, nbytes,
                          is_fair, now):
    """Per-completed-block metrics (callers guard on ``METRICS.enabled``).

    ``estimator_rel_error`` compares the EWMA per-connection estimate
    against the *raw* simulated link rate at completion time — a
    diagnostic for estimator drift, not an exact residual, since the
    true per-connection share also depends on concurrent transfer count.
    """
    METRICS.inc(
        "bytes_up" if direction == UPLOAD else "bytes_down",
        nbytes, cloud=cloud_id,
    )
    if direction == UPLOAD and not is_fair:
        METRICS.inc("redundant_blocks", cloud=cloud_id)
        METRICS.inc("redundant_bytes", nbytes, cloud=cloud_id)
    engine = getattr(
        conn, "uplink" if direction == UPLOAD else "downlink", None
    )
    bandwidth = getattr(engine, "bandwidth", None)
    if bandwidth is not None:
        true_rate = bandwidth.rate_at(now)
        est = estimator.estimate(cloud_id, direction)
        if true_rate > 0 and math.isfinite(est):
            METRICS.observe(
                "estimator_rel_error",
                abs(est - true_rate) / true_rate,
                direction=direction,
            )


def _telemetry_estimator(estimator, conn, cloud_id, direction, now):
    """Feed estimate-vs-true-link gauges to the telemetry windows
    (callers guard on ``TELEMETRY.enabled``)."""
    engine = getattr(
        conn, "uplink" if direction == UPLOAD else "downlink", None
    )
    bandwidth = getattr(engine, "bandwidth", None)
    if bandwidth is None:
        return
    true_rate = bandwidth.rate_at(now)
    est = estimator.estimate(cloud_id, direction)
    if math.isfinite(est):
        TELEMETRY.estimator(cloud_id, now, direction, est, true_rate)


# ---------------------------------------------------------------------------
# Inputs and reports
# ---------------------------------------------------------------------------


@dataclass
class FileUpload:
    """One file to upload: its segments (records + plaintext data)."""

    path: str
    segments: List[Tuple[SegmentRecord, bytes]]  # (record, segment bytes)

    @property
    def size(self) -> int:
        return sum(record.size for record, _ in self.segments)


@dataclass
class FileUploadReport:
    path: str
    size: int
    started_at: float
    available_at: Optional[float] = None
    reliable_at: Optional[float] = None
    degraded: bool = False  # a cloud died; fair shares incomplete
    blocks_per_cloud: Dict[str, int] = field(default_factory=dict)

    @property
    def available_duration(self) -> Optional[float]:
        if self.available_at is None:
            return None
        return self.available_at - self.started_at


@dataclass
class UploadBatchReport:
    files: List[FileUploadReport]
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_requests: int = 0

    @property
    def all_available(self) -> bool:
        return all(f.available_at is not None for f in self.files)

    @property
    def last_available_at(self) -> Optional[float]:
        times = [f.available_at for f in self.files]
        if any(t is None for t in times):
            return None
        return max(times) if times else self.started_at

    def report_for(self, path: str) -> FileUploadReport:
        for report in self.files:
            if report.path == path:
                return report
        raise KeyError(path)


@dataclass
class FileDownload:
    """One file to download: ordered segment records from metadata."""

    path: str
    segments: List[SegmentRecord]

    @property
    def size(self) -> int:
        return sum(record.size for record in self.segments)


@dataclass
class FileDownloadReport:
    path: str
    size: int
    started_at: float
    completed_at: Optional[float] = None
    content: Optional[bytes] = None

    @property
    def duration(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclass
class DownloadBatchReport:
    files: List[FileDownloadReport]
    started_at: float = 0.0
    finished_at: float = 0.0
    failed_requests: int = 0

    @property
    def all_completed(self) -> bool:
        return all(f.completed_at is not None for f in self.files)

    def report_for(self, path: str) -> FileDownloadReport:
        for report in self.files:
            if report.path == path:
                return report
        raise KeyError(path)


# ---------------------------------------------------------------------------
# Upload scheduling
# ---------------------------------------------------------------------------


class _SegmentUploadState:
    """Book-keeping for one unique segment within a batch."""

    def __init__(self, record: SegmentRecord, data: bytes,
                 cloud_ids: Sequence[str], config: UniDriveConfig):
        self.record = record
        self.data = data
        # Position in the batch's flattened first-occurrence scan order;
        # assigned by the scheduler, used by the cursor dispatcher.
        self.position = 0
        # Progress-counter bookkeeping (set once, when the transition
        # is first observed after a completed block).
        self.counted_available = False
        self.counted_reliable = False
        self.k = record.k
        self.cap = max_blocks_per_cloud(record.k, config.k_security)
        share = fair_share(record.k, config.k_reliability)
        assignment = fair_share_assignment(cloud_ids, record.k,
                                           config.k_reliability)
        self.fair: Dict[str, deque] = {
            cid: deque(indices) for cid, indices in assignment.items()
        }
        self.fair_targets: Dict[str, int] = {cid: share for cid in cloud_ids}
        normal_count = share * len(cloud_ids)
        self.extras = deque(range(normal_count, record.n))
        self.uploaded: Dict[int, str] = {}
        self.inflight: Dict[int, str] = {}
        self.fair_inflight: set = set()
        self.per_cloud: Dict[str, int] = {cid: 0 for cid in cloud_ids}
        self.fair_uploaded: Dict[str, int] = {cid: 0 for cid in cloud_ids}
        self.degraded = False

    # -- predicates --------------------------------------------------------

    @property
    def assignment_satisfied(self) -> bool:
        """Enough blocks uploaded or in flight to promise availability."""
        return len(self.uploaded) + len(self.inflight) >= self.k

    @property
    def available(self) -> bool:
        return len(self.uploaded) >= self.k

    def fair_done(self, cloud_id: str) -> bool:
        return self.fair_uploaded.get(cloud_id, 0) >= self.fair_targets.get(
            cloud_id, 0
        )

    def fair_pending(self, cloud_id: str) -> bool:
        return bool(self.fair.get(cloud_id))

    @property
    def reliable(self) -> bool:
        return all(
            self.fair_done(cid) for cid in self.fair_targets
        ) and not self.degraded

    def any_fair_pending(self) -> bool:
        return any(self.fair.values())

    @property
    def fair_outstanding(self) -> bool:
        """Fair-share work still queued or in flight anywhere."""
        return self.any_fair_pending() or bool(self.fair_inflight)

    def cap_room(self, cloud_id: str) -> bool:
        return self.per_cloud.get(cloud_id, 0) < self.cap

    # -- transitions -------------------------------------------------------

    def take_fair(self, cloud_id: str) -> Optional[int]:
        queue = self.fair.get(cloud_id)
        if not queue or not self.cap_room(cloud_id):
            return None
        index = queue.popleft()
        self._mark_inflight(index, cloud_id)
        self.fair_inflight.add(index)
        return index

    def take_extra(self, cloud_id: str) -> Optional[int]:
        if not self.extras or not self.cap_room(cloud_id):
            return None
        index = self.extras.popleft()
        self._mark_inflight(index, cloud_id)
        return index

    def _mark_inflight(self, index: int, cloud_id: str) -> None:
        self.inflight[index] = cloud_id
        self.per_cloud[cloud_id] = self.per_cloud.get(cloud_id, 0) + 1

    def complete(self, index: int, cloud_id: str, is_fair: bool) -> None:
        self.inflight.pop(index, None)
        self.fair_inflight.discard(index)
        self.uploaded[index] = cloud_id
        # The asynchronous Cloud-ID callback (paper §5.1): the metadata
        # record learns where the block landed as soon as it landed.
        self.record.locations[index] = cloud_id
        if is_fair:
            self.fair_uploaded[cloud_id] = self.fair_uploaded.get(cloud_id, 0) + 1

    def preseed(self, index: int, cloud_id: str) -> None:
        """Mark a block as already on a cloud (journal resume).

        The block counts toward availability, fair shares, and the
        per-cloud security cap without being re-uploaded.  A journaled
        index normally sits in ``cloud_id``'s own fair queue (the
        assignment is deterministic); if the original round had degraded
        and dispatched it elsewhere, it is pulled from wherever it
        queues so no worker uploads it twice.
        """
        if index in self.uploaded:
            return
        is_fair = False
        queue = self.fair.get(cloud_id)
        if queue is not None and index in queue:
            queue.remove(index)
            is_fair = True
        elif index in self.extras:
            self.extras.remove(index)
        else:
            for other_queue in self.fair.values():
                if index in other_queue:
                    other_queue.remove(index)
                    break
        self.uploaded[index] = cloud_id
        self.record.locations[index] = cloud_id
        self.per_cloud[cloud_id] = self.per_cloud.get(cloud_id, 0) + 1
        if is_fair:
            self.fair_uploaded[cloud_id] = self.fair_uploaded.get(cloud_id, 0) + 1

    def fail(self, index: int, cloud_id: str, is_fair: bool,
             cloud_dead: bool) -> None:
        """Return the index to its pool (or the extras pool if the cloud
        died and can no longer take its fair share)."""
        self.inflight.pop(index, None)
        self.fair_inflight.discard(index)
        self.per_cloud[cloud_id] = max(0, self.per_cloud.get(cloud_id, 0) - 1)
        if is_fair and not cloud_dead:
            self.fair[cloud_id].appendleft(index)
        else:
            if is_fair:
                self.degraded = True
            self.extras.appendleft(index)

    def abandon_cloud(self, cloud_id: str) -> None:
        """A cloud died: its queued fair indices become extras."""
        queue = self.fair.get(cloud_id)
        if queue:
            self.degraded = True
            while queue:
                self.extras.appendleft(queue.pop())


@dataclass
class _UploadTask:
    state: _SegmentUploadState
    index: int
    is_fair: bool


class UploadScheduler:
    """Schedules one batch of file uploads over the multi-cloud."""

    def __init__(
        self,
        sim: Simulator,
        connections: Sequence[CloudAPI],
        pipeline: BlockPipeline,
        config: UniDriveConfig,
        estimator: Optional[ThroughputEstimator] = None,
        over_provision: bool = True,
        dynamic: bool = True,
        on_block_uploaded: Optional[Callable[[str, int, str], None]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        rng=None,
        resume: Optional[Dict[str, Dict[int, str]]] = None,
        trace_ctx=None,
        tenant: Optional[str] = None,
        degrade: Optional[DegradeController] = None,
        budget: Optional[DeadlineBudget] = None,
    ):
        if not connections:
            raise ValueError("need at least one cloud connection")
        self.sim = sim
        self.connections = list(connections)
        self.cloud_ids = [c.cloud_id for c in self.connections]
        # Degradation control plane (None = disabled, the default): the
        # breaker gate in _next_task and the per-round deadline budget.
        self._degrade = degrade
        self._budget = budget
        self.pipeline = pipeline
        self.config = config
        self.estimator = estimator or ThroughputEstimator()
        self.over_provision = over_provision
        self.dynamic = dynamic
        self.on_block_uploaded = on_block_uploaded
        # Trace-correlation ancestry for this batch's transfer spans and
        # tenant identity for per-tenant SLO accounting; both optional
        # and inert unless the respective hub is enabled.
        self.trace_ctx = trace_ctx
        self.tenant = tenant
        # Journal resume: segment_id -> {index: cloud_id} of blocks a
        # previous (crashed) round already landed; they are credited as
        # uploaded at batch start and never re-transferred.
        self.resume = resume or {}
        # Unified failure policy: classifies errors (fail-fast vs
        # transient) and paces re-dispatch after transient failures.
        # rng=None keeps the backoff schedule deterministic.
        self.retry = retry_policy or RetryPolicy.from_config(config)
        self.rng = rng
        # Per-batch state, reset in run_batch().
        self._files: List[FileUpload] = []
        self._reports: Dict[str, FileUploadReport] = {}
        self._states: Dict[str, _SegmentUploadState] = {}
        self._file_segments: Dict[str, List[_SegmentUploadState]] = {}
        self._inflight_total = 0
        self._dead: Dict[str, int] = {}
        self._failed_requests = 0
        self._wake = None
        # Cursor-dispatch structures (see _next_task): the flattened
        # first-occurrence state order, a segment->files index, per-cloud
        # phase cursors and incrementally-maintained per-file progress
        # counters.
        self._ordered: List[_SegmentUploadState] = []
        self._state_files: Dict[str, List[str]] = {}
        self._ptr_a: Dict[str, int] = {}
        self._ptr_b: Dict[str, int] = {}
        self._ptr_c: Dict[str, int] = {}
        self._pending_available: Dict[str, int] = {}
        self._pending_reliable: Dict[str, int] = {}
        self._satisfied_flush: List[str] = []
        self._dispatch_scans = 0  # state visits, for the perf harness
        self._workers: List = []
        self._aborted = False

    # -- public API -------------------------------------------------------

    def run_batch(self, files: Sequence[FileUpload]):
        """Upload a batch; generator returns an :class:`UploadBatchReport`."""
        started = self.sim.now
        self._files = list(files)
        self._reports = {}
        self._states = {}
        self._file_segments = {}
        self._inflight_total = 0
        self._dead = {cid: 0 for cid in self.cloud_ids}
        self._failed_requests = 0
        self._wake = self.sim.event()
        self._ordered = []
        self._state_files = {}
        self._satisfied_flush = []
        self._dispatch_scans = 0
        for file in self._files:
            self._reports[file.path] = FileUploadReport(
                path=file.path, size=file.size, started_at=self.sim.now,
                blocks_per_cloud={cid: 0 for cid in self.cloud_ids},
            )
            states = []
            for record, data in file.segments:
                state = self._states.get(record.segment_id)
                if state is None:
                    state = _SegmentUploadState(
                        record, data, self.cloud_ids, self.config
                    )
                    state.position = len(self._ordered)
                    for idx, cid in sorted(
                        self.resume.get(record.segment_id, {}).items()
                    ):
                        if cid in self.cloud_ids:
                            state.preseed(idx, cid)
                    self._states[record.segment_id] = state
                    self._ordered.append(state)
                    self._state_files[record.segment_id] = []
                files_of = self._state_files[record.segment_id]
                if file.path not in files_of:
                    files_of.append(file.path)
                states.append(state)
            self._file_segments[file.path] = states
        self._ptr_a = {cid: 0 for cid in self.cloud_ids}
        self._ptr_b = {cid: 0 for cid in self.cloud_ids}
        self._ptr_c = {cid: 0 for cid in self.cloud_ids}
        self._pending_available = {}
        self._pending_reliable = {}
        for file in self._files:
            unique = {
                id(s): s for s in self._file_segments[file.path]
            }
            self._pending_available[file.path] = len(unique)
            self._pending_reliable[file.path] = len(unique)
            if not unique:
                # A zero-segment file is vacuously available *and*
                # reliable; like the full-scan refresh, it is stamped at
                # the first progress check (or the final one).
                self._satisfied_flush.append(file.path)
        if self.resume:
            # Preseeded blocks count as completed progress right away
            # (countdowns, availability stamps) — they just never
            # re-transfer.
            for state in self._ordered:
                if state.uploaded:
                    self._note_block_completed(state)
        workers = []
        for conn in self.connections:
            for _slot in range(self.config.connections_per_cloud):
                workers.append(self.sim.process(self._worker(conn)))
        self._workers = workers
        if workers:
            yield AllOf(self.sim, workers)
        self._workers = []
        self._refresh_file_reports(final=True)
        return UploadBatchReport(
            files=[self._reports[f.path] for f in self._files],
            started_at=started,
            finished_at=self.sim.now,
            failed_requests=self._failed_requests,
        )

    # -- worker loop -------------------------------------------------------

    def _worker(self, conn: CloudAPI):
        cloud_id = conn.cloud_id
        while True:
            if (
                self._budget is not None
                and not self._aborted
                and self._budget.expired
            ):
                # Round deadline reached: stop dispatching; the batch
                # winds down with whatever blocks already landed
                # (brownout debt or a SyncError pick it up upstream).
                self.abort()
            if self._aborted:
                return
            task = self._next_task(cloud_id)
            if task is None:
                if self._done():
                    return
                yield self._wake
                continue
            state, index = task.state, task.index
            # Integrity fingerprint, recorded at encode time: blocks are
            # deterministic in (segment content, index), so the hash is
            # valid metadata even if this particular transfer fails.
            # The digest rides along from the batched per-segment
            # fingerprint pass over the encoded matrix.
            block, digest = self.pipeline.encode_block_with_digest(
                state.record.segment_id, state.data, index
            )
            if index not in state.record.block_hashes:
                state.record.block_hashes[index] = digest
            path = self.pipeline.block_path(state.record, index)
            self._inflight_total += 1
            start = self.sim.now
            span = None
            block_ctx = None
            if TRACE.enabled:
                sid = TRACE.tracer.next_id()
                attrs = _ctx_attrs(self.trace_ctx, sid)
                span = TRACE.begin(
                    "transfer", t=start, track=cloud_id,
                    dir=UPLOAD, seg=state.record.segment_id[:12],
                    block=index, bytes=len(block), fair=task.is_fair,
                    attempt=self._dead[cloud_id] + 1, **attrs,
                )
                block_ctx = (attrs.get("trace_id", sid), sid)
            try:
                yield from conn.upload(path, block, ctx=block_ctx)
            except CloudError as exc:
                self._inflight_total -= 1
                self._failed_requests += 1
                self.estimator.record_failure(
                    cloud_id, UPLOAD, now=self.sim.now
                )
                # Fail fast on non-transient errors: an unavailable (or
                # quota-exhausted) cloud is declared dead for the batch
                # immediately — re-probing it burns the unavailability
                # timeout per attempt with no chance of success.
                action = self.retry.classify(exc)
                fatal = action is not RETRY
                if span is not None:
                    TRACE.end(
                        span, t=self.sim.now,
                        error=type(exc).__name__, retry_action=action,
                    )
                if METRICS.enabled:
                    METRICS.inc(
                        "scheduler_redispatch",
                        cloud=cloud_id, direction=UPLOAD,
                    )
                if TELEMETRY.enabled:
                    TELEMETRY.transfer(
                        cloud_id, self.sim.now, False, 0, UPLOAD,
                        tenant=self.tenant, retry_action=action,
                    )
                if self._degrade is not None:
                    self._degrade.on_failure(
                        cloud_id, self.sim.now, fatal=fatal
                    )
                dead = self._note_failure(cloud_id, fatal=fatal)
                state.fail(index, cloud_id, task.is_fair, cloud_dead=dead)
                # A failure restores candidacy: the failed index went
                # back to this cloud's fair queue or to the shared
                # extras pool, and this cloud regained cap room.
                self._rewind_cursors(state.position)
                self._pulse()
                if not dead:
                    # Transient: pace this connection's next attempt.
                    delay = self.retry.backoff(
                        self._dead[cloud_id] - 1, self.rng
                    )
                    if delay > 0:
                        wait = (
                            TRACE.begin(
                                "retry_wait", t=self.sim.now,
                                track=cloud_id, dir=UPLOAD,
                                attempt=self._dead[cloud_id],
                            )
                            if TRACE.enabled
                            else None
                        )
                        yield self.sim.timeout(delay)
                        if wait is not None:
                            TRACE.end(wait, t=self.sim.now)
                continue
            self._inflight_total -= 1
            self._dead[cloud_id] = 0
            if self._degrade is not None:
                self._degrade.on_success(cloud_id, self.sim.now)
            self.estimator.record(
                cloud_id, UPLOAD, len(block), self.sim.now - start,
                now=self.sim.now,
            )
            if span is not None:
                TRACE.end(span, t=self.sim.now)
            if METRICS.enabled:
                _record_block_metrics(
                    self.estimator, conn, cloud_id, UPLOAD,
                    len(block), task.is_fair, self.sim.now,
                )
            if TELEMETRY.enabled:
                TELEMETRY.transfer(
                    cloud_id, self.sim.now, True, len(block), UPLOAD,
                    tenant=self.tenant, redundant=not task.is_fair,
                )
                _telemetry_estimator(
                    self.estimator, conn, cloud_id, UPLOAD, self.sim.now
                )
            state.complete(index, cloud_id, task.is_fair)
            if task.is_fair:
                # Completing a fair block may flip fair_done for this
                # cloud, unlocking this segment's extras for it.
                self._rewind_cursors(state.position, only_cloud=cloud_id)
            if self.on_block_uploaded is not None:
                self.on_block_uploaded(
                    state.record.segment_id, index, cloud_id
                )
            self._note_block_completed(state)
            self._bump_block_count(state, cloud_id)
            self._pulse()

    # -- dispatch policy ----------------------------------------------------

    def _next_task(self, cloud_id: str,
                   peek: bool = False) -> Optional[_UploadTask]:
        """Pick (and unless ``peek``, commit) the next block for a cloud.

        Dynamic mode uses the amortized-O(1) cursor dispatcher below;
        the static benchmark baseline keeps the reference decision
        ladder (its file-gated order does not admit a prefix cursor).
        Both walk the same ladder in peek and commit mode, so a
        successful peek guarantees the subsequent commit would succeed.
        """
        if self._aborted:
            return None
        if self._degrade is not None and not self._degrade.admits(
            cloud_id, self.sim.now
        ):
            # Breaker open (or the scoreboard pins the cloud
            # unavailable): no regular dispatch — the fix for the
            # degraded-cloud retry burn, where every fresh batch used
            # to grant a known-bad cloud a full paced retry budget.
            # Half-open probes pass through admits() bounded by the
            # probe quota and are accounted in the non-peek commit
            # below.
            return None
        if not self.dynamic:
            task = self._next_task_reference(cloud_id, peek)
        else:
            if self._is_dead(cloud_id):
                return None
            task = self._scan_phase_a(cloud_id, peek)
            if task is None:
                task = self._scan_phase_b(cloud_id, peek)
            if task is None and self.over_provision:
                task = self._scan_phase_c(cloud_id, peek)
        if task is not None and not peek and self._degrade is not None:
            self._degrade.note_dispatch(cloud_id, self.sim.now)
        return task

    # The three phase scans share one structure: walk the flattened
    # first-occurrence state order from this cloud's cursor, skipping
    # states that cannot currently yield a task.  Every skip is
    # *permanent* with respect to this cloud's own actions — a skipped
    # state can only become dispatchable again through an event that
    # calls _rewind_cursors (a failed request re-queues an index and
    # frees cap room; a completed fair share unlocks extras; a dead
    # cloud's abandoned fair queue refills the extras pool) — so the
    # cursor never needs to revisit the prefix and dispatch cost is
    # amortized O(1) per block instead of O(files x segments).

    def _scan_phase_a(self, cloud_id: str,
                      peek: bool) -> Optional[_UploadTask]:
        """Availability-first: earliest file not yet available."""
        ordered = self._ordered
        count = len(ordered)
        ptr = self._ptr_a[cloud_id]
        while ptr < count:
            state = ordered[ptr]
            self._dispatch_scans += 1
            if not state.available:
                if state.fair_pending(cloud_id):
                    if state.cap_room(cloud_id):
                        self._ptr_a[cloud_id] = ptr
                        if peek:
                            return _UploadTask(state, -1, is_fair=True)
                        return _UploadTask(
                            state, state.take_fair(cloud_id), is_fair=True
                        )
                elif (self.over_provision and state.fair_done(cloud_id)
                        and state.extras and state.cap_room(cloud_id)):
                    self._ptr_a[cloud_id] = ptr
                    if peek:
                        return _UploadTask(state, -1, is_fair=False)
                    return _UploadTask(
                        state, state.take_extra(cloud_id), is_fair=False
                    )
            ptr += 1
        self._ptr_a[cloud_id] = count
        return None

    def _scan_phase_b(self, cloud_id: str,
                      peek: bool) -> Optional[_UploadTask]:
        """Reliability-second: top up outstanding fair shares."""
        ordered = self._ordered
        count = len(ordered)
        ptr = self._ptr_b[cloud_id]
        while ptr < count:
            state = ordered[ptr]
            self._dispatch_scans += 1
            if state.fair_pending(cloud_id) and state.cap_room(cloud_id):
                self._ptr_b[cloud_id] = ptr
                if peek:
                    return _UploadTask(state, -1, is_fair=True)
                return _UploadTask(
                    state, state.take_fair(cloud_id), is_fair=True
                )
            ptr += 1
        self._ptr_b[cloud_id] = count
        return None

    def _scan_phase_c(self, cloud_id: str,
                      peek: bool) -> Optional[_UploadTask]:
        """Over-provision while slower clouds still owe fair shares."""
        ordered = self._ordered
        count = len(ordered)
        ptr = self._ptr_c[cloud_id]
        while ptr < count:
            state = ordered[ptr]
            self._dispatch_scans += 1
            if (state.fair_outstanding and state.fair_done(cloud_id)
                    and state.extras and state.cap_room(cloud_id)):
                self._ptr_c[cloud_id] = ptr
                if peek:
                    return _UploadTask(state, -1, is_fair=False)
                return _UploadTask(
                    state, state.take_extra(cloud_id), is_fair=False
                )
            ptr += 1
        self._ptr_c[cloud_id] = count
        return None

    def _rewind_cursors(self, position: int,
                        only_cloud: Optional[str] = None) -> None:
        """Pull phase cursors back to ``position`` after an event that
        may have restored a skipped state's candidacy."""
        clouds = (only_cloud,) if only_cloud is not None else self.cloud_ids
        for cid in clouds:
            if self._ptr_a[cid] > position:
                self._ptr_a[cid] = position
            if self._ptr_b[cid] > position:
                self._ptr_b[cid] = position
            if self._ptr_c[cid] > position:
                self._ptr_c[cid] = position

    def _next_task_reference(self, cloud_id: str,
                             peek: bool = False) -> Optional[_UploadTask]:
        """The original O(files x segments) decision-ladder dispatcher.

        Retained as the executable specification of the scheduling
        policy: the cursor dispatcher above must pick byte-identical
        blocks (the equivalence tests swap this in and compare batch
        reports), and the static benchmark baseline still runs on it.
        """
        if self._is_dead(cloud_id):
            return None

        def fair(state: _SegmentUploadState) -> Optional[_UploadTask]:
            if not state.fair_pending(cloud_id) or not state.cap_room(cloud_id):
                return None
            if peek:
                return _UploadTask(state, -1, is_fair=True)
            return _UploadTask(state, state.take_fair(cloud_id), is_fair=True)

        def extra(state: _SegmentUploadState) -> Optional[_UploadTask]:
            # Over-provisioned blocks go only to clouds that already
            # *finished transferring* their own fair share of this
            # segment (paper §6.2).
            if not state.fair_done(cloud_id):
                return None
            if not state.extras or not state.cap_room(cloud_id):
                return None
            if peek:
                return _UploadTask(state, -1, is_fair=False)
            return _UploadTask(state, state.take_extra(cloud_id),
                               is_fair=False)

        # Phase A: availability-first, files strictly in order.  Every
        # cloud keeps pulling blocks for the earliest file that is not
        # yet *available* (k blocks actually uploaded) — maximal
        # parallel transfer, with fast clouds hedging via extras.
        for file in self._files:
            for state in self._file_segments[file.path]:
                self._dispatch_scans += 1
                if state.available:
                    continue
                task = fair(state)
                if task is not None:
                    return task
                if self.over_provision:
                    task = extra(state)
                    if task is not None:
                        return task
            if not self.dynamic:
                # Benchmark baseline: finish this file's fair shares
                # before touching the next file (no phase split).
                for state in self._file_segments[file.path]:
                    task = fair(state)
                    if task is not None:
                        return task
                if any(
                    not s.available or s.any_fair_pending()
                    for s in self._file_segments[file.path]
                ):
                    return None
        # Phase B: reliability-second — top up outstanding fair shares.
        for file in self._files:
            for state in self._file_segments[file.path]:
                self._dispatch_scans += 1
                task = fair(state)
                if task is not None:
                    return task
        # Over-provision while slower clouds still owe fair shares
        # (stop once the slowest cloud finished its fair share, §6.2).
        if self.over_provision and self.dynamic:
            for file in self._files:
                for state in self._file_segments[file.path]:
                    self._dispatch_scans += 1
                    if not state.fair_outstanding:
                        continue
                    task = extra(state)
                    if task is not None:
                        return task
        return None

    # -- progress & termination -------------------------------------------

    def _note_block_completed(self, state: _SegmentUploadState) -> None:
        """Incremental progress accounting after one completed block.

        Availability and reliability of a segment state are monotone
        (blocks complete exactly once, and a reliable state has no fair
        work left that could later mark it degraded), so per-file
        countdowns stamped through the segment->files index replace the
        full ``all(...)`` rescan of every file on every block.
        """
        now = self.sim.now
        if self._satisfied_flush:
            # Zero-segment files are vacuously satisfied; stamp them at
            # the first progress check, as the full rescan used to.
            for path in self._satisfied_flush:
                report = self._reports[path]
                report.available_at = now
                report.reliable_at = now
            self._satisfied_flush = []
        if not state.counted_available and state.available:
            state.counted_available = True
            for path in self._state_files[state.record.segment_id]:
                self._pending_available[path] -= 1
                if self._pending_available[path] == 0:
                    report = self._reports[path]
                    if report.available_at is None:
                        report.available_at = now
        if not state.counted_reliable and state.reliable:
            state.counted_reliable = True
            for path in self._state_files[state.record.segment_id]:
                self._pending_reliable[path] -= 1
                if self._pending_reliable[path] == 0:
                    report = self._reports[path]
                    if report.reliable_at is None:
                        report.reliable_at = now

    def _refresh_file_reports(self, final: bool = False) -> None:
        """Full-scan progress stamping; now only the batch-final pass
        (stragglers with no completed blocks, degraded flags)."""
        for file in self._files:
            report = self._reports[file.path]
            states = self._file_segments[file.path]
            if report.available_at is None and all(
                s.available for s in states
            ):
                report.available_at = self.sim.now
            if report.reliable_at is None and all(
                s.reliable for s in states
            ):
                report.reliable_at = self.sim.now
            if final:
                report.degraded = any(s.degraded for s in states)

    def _bump_block_count(self, state: _SegmentUploadState,
                          cloud_id: str) -> None:
        for path in self._state_files[state.record.segment_id]:
            counts = self._reports[path].blocks_per_cloud
            counts[cloud_id] = counts.get(cloud_id, 0) + 1

    def _note_failure(self, cloud_id: str, fatal: bool = False) -> bool:
        """Count a failure; returns True once the cloud is declared dead.

        ``fatal`` failures (fail-fast / give-up classification) jump the
        counter straight to the death threshold — the batch must not
        keep probing a cloud whose errors cannot succeed on retry.
        """
        was_dead = self._is_dead(cloud_id)
        if fatal:
            self._dead[cloud_id] = max(
                self._dead[cloud_id], self.config.cloud_failure_threshold
            )
        else:
            self._dead[cloud_id] += 1
        if not was_dead and self._is_dead(cloud_id):
            for state in self._states.values():
                state.abandon_cloud(cloud_id)
            # Abandoned fair queues refilled the extras pool across the
            # whole batch; every cursor must rescan from the start.
            self._rewind_cursors(0)
            return True
        return self._is_dead(cloud_id)

    def _is_dead(self, cloud_id: str) -> bool:
        return self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold

    def _done(self) -> bool:
        if self._inflight_total > 0:
            return False
        return all(
            self._next_task(cid, peek=True) is None for cid in self.cloud_ids
        )

    def _pulse(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()

    # -- crash modelling -----------------------------------------------------

    def abort(self) -> None:
        """Stop dispatching: idle workers return at once, busy workers
        exit after their current transfer resolves (soft shutdown)."""
        self._aborted = True
        if self._wake is not None:
            self._pulse()

    def kill_workers(self) -> None:
        """Hard-stop every worker where it stands (client power loss).

        In-flight transfers never complete client-side: a block whose
        upload generator dies mid-payload was never acknowledged, so it
        is *not* recorded in metadata or the journal — exactly the
        orphan/loss window a crash leaves in reality.
        """
        self._aborted = True
        for proc in self._workers:
            kill = getattr(proc, "kill", None)
            if kill is not None:
                kill()
        self._workers = []


# ---------------------------------------------------------------------------
# Download scheduling
# ---------------------------------------------------------------------------


class _SegmentDownloadState:
    """Book-keeping for one segment being fetched."""

    def __init__(self, record: SegmentRecord):
        self.record = record
        self.k = record.k
        self.blocks: Dict[int, bytes] = {}
        self.inflight: Dict[int, str] = {}
        self.exhausted: set = set()  # (index, cloud) pairs that failed
        # Hedged-fetch bookkeeping (only populated when the degradation
        # control plane is on): dispatch time of each in-flight fetch,
        # its killable child process, and the set of slow in-flight
        # indices already hedged (one hedge per slow fetch).
        self.inflight_since: Dict[int, float] = {}
        self.inflight_proc: Dict[int, object] = {}
        self.hedged: set = set()
        # Cursor-dispatch bookkeeping (see DownloadScheduler): position
        # in the flattened scan order, the per-cloud block-index lists
        # frozen at batch start (locations do not change mid-download),
        # and the progress-counter flag.
        self.position = 0
        self.cloud_indices: Dict[str, List[int]] = {}
        self.counted_complete = False

    @property
    def complete(self) -> bool:
        return len(self.blocks) >= self.k

    @property
    def saturated(self) -> bool:
        """True when no further request should be issued."""
        return len(self.blocks) + len(self.inflight) >= self.k

    def candidate_index(self, cloud_id: str) -> Optional[int]:
        for index in self.record.blocks_on(cloud_id):
            if index in self.blocks or index in self.inflight:
                continue
            if (index, cloud_id) in self.exhausted:
                continue
            return index
        return None

    def candidate_for(self, cloud_id: str) -> Tuple[Optional[int], bool]:
        """Like :meth:`candidate_index`, plus permanence information.

        Returns ``(index, exhausted)``: ``exhausted`` is True when every
        block this cloud holds is already fetched or failed — a
        *permanent* condition (both sets only grow), letting the
        dispatch cursor skip this state forever.  An index blocked only
        by an in-flight request is temporary (the cursor must not
        advance past it): the flight resolves to fetched or failed
        either way, but until then the state must stay scannable.
        """
        pending = False
        for index in self.cloud_indices.get(cloud_id, ()):
            if index in self.blocks or (index, cloud_id) in self.exhausted:
                continue
            if index in self.inflight:
                pending = True
                continue
            return index, False
        return None, not pending


class DownloadScheduler:
    """Schedules one batch of file downloads from the multi-cloud."""

    def __init__(
        self,
        sim: Simulator,
        connections: Sequence[CloudAPI],
        pipeline: BlockPipeline,
        config: UniDriveConfig,
        estimator: Optional[ThroughputEstimator] = None,
        dynamic: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        rng=None,
        trace_ctx=None,
        tenant: Optional[str] = None,
        degrade: Optional[DegradeController] = None,
        budget: Optional[DeadlineBudget] = None,
    ):
        if not connections:
            raise ValueError("need at least one cloud connection")
        self.sim = sim
        self.connections = list(connections)
        self.pipeline = pipeline
        self.config = config
        self.estimator = estimator or ThroughputEstimator()
        self.dynamic = dynamic
        self.retry = retry_policy or RetryPolicy.from_config(config)
        self.rng = rng
        self.trace_ctx = trace_ctx
        self.tenant = tenant
        # Degradation control plane (None = disabled, the default).
        self._degrade = degrade
        self._budget = budget
        self._aborted = False
        self._hedge_budget: Optional[float] = None
        #: Hedge accounting for benchmarks and acceptance tests.
        self.hedges_fired = 0
        self.hedged_bytes = 0
        #: Wall-clock (virtual) duration of every successful block
        #: fetch in the last batch — the p99 input for the hedging
        #: benchmark.  Cancelled losers do not appear.
        self.fetch_latencies: List[float] = []
        self._files: List[FileDownload] = []
        self._reports: Dict[str, FileDownloadReport] = {}
        self._states: Dict[str, _SegmentDownloadState] = {}
        self._file_segments: Dict[str, List[_SegmentDownloadState]] = {}
        self._inflight_total = 0
        self._dead: Dict[str, int] = {}
        self._failed_requests = 0
        self._wake = None
        # Cursor-dispatch structures (see _next_request).
        self._ordered: List[_SegmentDownloadState] = []
        self._state_files: Dict[str, List[str]] = {}
        self._cloud_states: Dict[str, List[_SegmentDownloadState]] = {}
        self._cloud_ptr: Dict[str, int] = {}
        self._pending_complete: Dict[str, int] = {}
        self._complete_flush: List[str] = []
        self._dispatch_scans = 0  # state visits, for the perf harness

    def run_batch(self, files: Sequence[FileDownload]):
        """Fetch a batch; generator returns a :class:`DownloadBatchReport`.

        Files that cannot be reconstructed (too many clouds down) finish
        with ``content=None`` rather than blocking the batch.
        """
        started = self.sim.now
        self._files = list(files)
        self._reports = {}
        self._states = {}
        self._file_segments = {}
        self._inflight_total = 0
        self._dead = {c.cloud_id: 0 for c in self.connections}
        self._failed_requests = 0
        self._aborted = False
        self._hedge_budget = None
        self.hedges_fired = 0
        self.hedged_bytes = 0
        self.fetch_latencies = []
        self._wake = self.sim.event()
        self._ordered = []
        self._state_files = {}
        self._complete_flush = []
        self._dispatch_scans = 0
        cloud_ids = [c.cloud_id for c in self.connections]
        self._cloud_states = {cid: [] for cid in cloud_ids}
        self._cloud_ptr = {cid: 0 for cid in cloud_ids}
        for file in self._files:
            self._reports[file.path] = FileDownloadReport(
                path=file.path, size=file.size, started_at=self.sim.now
            )
            states = []
            for record in file.segments:
                state = self._states.get(record.segment_id)
                if state is None:
                    state = _SegmentDownloadState(record)
                    state.position = len(self._ordered)
                    self._states[record.segment_id] = state
                    self._ordered.append(state)
                    self._state_files[record.segment_id] = []
                    for cid in cloud_ids:
                        indices = record.blocks_on(cid)
                        if indices:
                            state.cloud_indices[cid] = indices
                            self._cloud_states[cid].append(state)
                files_of = self._state_files[record.segment_id]
                if file.path not in files_of:
                    files_of.append(file.path)
                states.append(state)
            self._file_segments[file.path] = states
        self._pending_complete = {}
        for file in self._files:
            unique = {id(s) for s in self._file_segments[file.path]}
            self._pending_complete[file.path] = len(unique)
            if not unique:
                self._complete_flush.append(file.path)
        if self._degrade is not None and self._degrade.hedging:
            # Hedge traffic is capped as a fraction of the batch's
            # expected fetch volume (k blocks per unique segment).
            expected = sum(
                s.k * self.pipeline.block_size(s.record)
                for s in self._ordered
            )
            self._hedge_budget = (
                self.config.hedge_bytes_fraction * expected
            )
        workers = []
        for conn in self._ranked_connections():
            for _slot in range(self.config.connections_per_cloud):
                workers.append(self.sim.process(self._worker(conn)))
        if workers:
            yield AllOf(self.sim, workers)
        for file in self._files:
            report = self._reports[file.path]
            states = self._file_segments[file.path]
            if all(s.complete for s in states):
                contents = [
                    self.pipeline.decode_segment(s.record, s.blocks)
                    for s in states
                ]
                report.content = self.pipeline.assemble_file(contents)
                if report.completed_at is None:
                    report.completed_at = self.sim.now
        return DownloadBatchReport(
            files=[self._reports[f.path] for f in self._files],
            started_at=started,
            finished_at=self.sim.now,
            failed_requests=self._failed_requests,
        )

    def _ranked_connections(self) -> List[CloudAPI]:
        """Fastest clouds first so their workers ask first (paper §6.2)."""
        if not self.dynamic:
            return list(self.connections)
        order = self.estimator.rank(
            [c.cloud_id for c in self.connections], DOWNLOAD
        )
        by_id = {c.cloud_id: c for c in self.connections}
        return [by_id[cid] for cid in order]

    def _worker(self, conn: CloudAPI):
        cloud_id = conn.cloud_id
        while True:
            if (
                self._budget is not None
                and not self._aborted
                and self._budget.expired
            ):
                # Round deadline reached: stop dispatching and let the
                # batch wind down; unfinished files report content=None
                # and the client degrades or aborts the round cleanly.
                self.abort()
            if self._aborted:
                return
            pick = self._next_request(cloud_id)
            hedge = False
            eta = None
            if (
                pick is None
                and self._degrade is not None
                and self._degrade.hedging
            ):
                pick, eta = self._next_hedge(cloud_id)
                hedge = pick is not None
            if pick is None:
                if self._done():
                    return
                if eta is not None and eta > self.sim.now:
                    # An in-flight fetch becomes hedge-eligible at a
                    # known future instant; park on whichever of
                    # (progress pulse, eligibility) fires first.
                    yield AnyOf(
                        self.sim,
                        [self._wake,
                         self.sim.timeout(eta - self.sim.now)],
                    )
                else:
                    yield self._wake
                continue
            state, index = pick
            # Entry bookkeeping happens here — not inside _fetch_block —
            # so another worker scanning between dispatch and the child
            # process's first step can never double-pick the index.
            state.inflight[index] = cloud_id
            state.inflight_since[index] = self.sim.now
            self._inflight_total += 1
            if self._degrade is None:
                yield from self._fetch_block(conn, state, index)
            else:
                self._degrade.note_dispatch(cloud_id, self.sim.now)
                proc = self.sim.process(
                    self._fetch_block(conn, state, index, hedge=hedge)
                )
                state.inflight_proc[index] = proc
                yield proc

    def abort(self) -> None:
        """Stop issuing new requests; in-flight transfers drain."""
        self._aborted = True
        self._pulse()

    def _next_hedge(self, cloud_id: str):
        """Find a hedge-worthy block for an otherwise idle connection.

        A segment is hedge-worthy when one of its in-flight fetches (on
        another cloud) has outrun its estimator-predicted duration by
        ``hedge_latency_factor`` and this cloud holds a spare index of
        the same segment (any k of n reconstruct, so fetching a
        *different* index races the slow fetch).  Returns
        ``(pick, eta)``: ``pick`` is ``(state, index)`` to dispatch now
        or None; ``eta`` is the earliest sim time any current fetch
        becomes hedge-eligible, letting the worker park on a timeout
        instead of only on the progress pulse.
        """
        if self._hedge_budget is None:
            return None, None
        if self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold:
            return None, None
        if not self._degrade.admits(cloud_id, self.sim.now):
            return None, None
        now = self.sim.now
        eta = None
        for state in self._cloud_states[cloud_id]:
            if state.complete or not state.inflight:
                continue
            index, _exhausted = state.candidate_for(cloud_id)
            if index is None:
                continue
            nbytes = self.pipeline.block_size(state.record)
            if self.hedged_bytes + nbytes > self._hedge_budget:
                continue
            for slow_index, holder in state.inflight.items():
                if holder == cloud_id or slow_index in state.hedged:
                    continue
                since = state.inflight_since.get(slow_index)
                if since is None:
                    continue
                threshold = self._degrade.hedge_threshold(
                    self.estimator.estimate(holder, DOWNLOAD), nbytes
                )
                if threshold is None:
                    continue
                ready_at = since + threshold
                if now >= ready_at:
                    state.hedged.add(slow_index)
                    self.hedged_bytes += nbytes
                    self.hedges_fired += 1
                    # The outrun fetch is itself a probe: the holder
                    # has moved at most ``nbytes`` in ``now - since``
                    # seconds, so fold that throughput ceiling into
                    # the estimator.  _defer_to_faster then steers new
                    # picks away from the slow cloud instead of
                    # burning the hedge budget rediscovering it one
                    # block at a time — without it, every cancelled
                    # loser frees a worker that immediately picks
                    # another doomed-slow block on a stale estimate.
                    self.estimator.record(
                        holder, DOWNLOAD, nbytes, now - since, now=now
                    )
                    if METRICS.enabled:
                        METRICS.inc("hedged_fetch", cloud=cloud_id)
                    return (state, index), None
                if eta is None or ready_at < eta:
                    eta = ready_at
        return None, eta

    def _cancel_losers(self, state: _SegmentDownloadState) -> None:
        """A segment just completed: kill its still-racing fetches
        (the hedge loser, or the outrun primary) so no further virtual
        time or bandwidth is spent on redundant blocks."""
        for proc in list(state.inflight_proc.values()):
            if proc.is_alive:
                proc.kill()

    def _fetch_block(self, conn: CloudAPI, state: _SegmentDownloadState,
                     index: int, hedge: bool = False):
        """Fetch one block of ``state`` from ``conn``, settling all
        scheduler bookkeeping on every exit path.

        Entry bookkeeping (inflight maps, the in-flight total) is done
        by the dispatching worker *before* this generator first runs,
        because with degradation enabled it executes as a killable
        child process that starts one event later.  The ``finally``
        clause settles the books when a hedge win kills the fetch
        mid-flight; it contains no yields, so :meth:`Process.kill`
        runs it to completion.
        """
        cloud_id = conn.cloud_id
        path = self.pipeline.block_path(state.record, index)
        start = self.sim.now
        span = None
        block_ctx = None
        if TRACE.enabled:
            sid = TRACE.tracer.next_id()
            attrs = _ctx_attrs(self.trace_ctx, sid)
            if hedge:
                attrs = {**attrs, "hedge": True}
            span = TRACE.begin(
                "transfer", t=start, track=cloud_id,
                dir=DOWNLOAD, seg=state.record.segment_id[:12],
                block=index, attempt=self._dead[cloud_id] + 1,
                **attrs,
            )
            block_ctx = (attrs.get("trace_id", sid), sid)
        settled = False
        try:
            try:
                block = yield from conn.download(path, ctx=block_ctx)
            except CloudError as exc:
                settled = True
                self._inflight_total -= 1
                self._failed_requests += 1
                state.inflight.pop(index, None)
                state.inflight_since.pop(index, None)
                state.inflight_proc.pop(index, None)
                state.exhausted.add((index, cloud_id))
                self.estimator.record_failure(
                    cloud_id, DOWNLOAD, now=self.sim.now
                )
                # Classification: an unavailable cloud is dead for the
                # batch at once (fail fast); a missing block is a
                # deterministic per-(index, cloud) miss, not evidence
                # the cloud died; transients count toward the threshold
                # and pace this connection's next attempt.
                action = self.retry.classify(exc)
                if span is not None:
                    TRACE.end(
                        span, t=self.sim.now,
                        error=type(exc).__name__, retry_action=action,
                    )
                if METRICS.enabled:
                    METRICS.inc(
                        "scheduler_redispatch",
                        cloud=cloud_id, direction=DOWNLOAD,
                    )
                if TELEMETRY.enabled:
                    if isinstance(exc, NotFoundError):
                        # Deterministic miss: this cloud simply doesn't
                        # hold the block (raced GC / placement) — the
                        # dispatcher refetches another replica.  Not a
                        # health or SLO signal.
                        TELEMETRY.missing_block(cloud_id, self.sim.now)
                    else:
                        TELEMETRY.transfer(
                            cloud_id, self.sim.now, False, 0, DOWNLOAD,
                            tenant=self.tenant, retry_action=action,
                        )
                if self._degrade is not None and not isinstance(
                    exc, NotFoundError
                ):
                    self._degrade.on_failure(
                        cloud_id, self.sim.now,
                        fatal=action is not RETRY,
                    )
                if action is not RETRY and not isinstance(exc, NotFoundError):
                    self._dead[cloud_id] = max(
                        self._dead[cloud_id],
                        self.config.cloud_failure_threshold,
                    )
                else:
                    self._dead[cloud_id] += 1
                self._pulse()
                if (action is RETRY and self._dead[cloud_id]
                        < self.config.cloud_failure_threshold):
                    delay = self.retry.backoff(
                        self._dead[cloud_id] - 1, self.rng
                    )
                    if delay > 0:
                        wait = (
                            TRACE.begin(
                                "retry_wait", t=self.sim.now,
                                track=cloud_id, dir=DOWNLOAD,
                                attempt=self._dead[cloud_id],
                            )
                            if TRACE.enabled
                            else None
                        )
                        yield self.sim.timeout(delay)
                        if wait is not None:
                            TRACE.end(wait, t=self.sim.now)
                return
            settled = True
            self._inflight_total -= 1
            state.inflight_since.pop(index, None)
            state.inflight_proc.pop(index, None)
            expected = state.record.block_hashes.get(index)
            if (
                expected is not None
                and getattr(conn, "retains_content", True)
                and block_hash(block) != expected
            ):
                # Silent corruption: the cloud served bytes that do not
                # match the recorded fingerprint.  Treat exactly like a
                # deterministic per-(index, cloud) miss — mark the pair
                # exhausted (a permanent erasure for this batch) so the
                # dispatcher re-fetches a different replica.
                self._failed_requests += 1
                state.inflight.pop(index, None)
                state.exhausted.add((index, cloud_id))
                self._dead[cloud_id] += 1
                if span is not None:
                    TRACE.end(
                        span, t=self.sim.now, bytes=len(block),
                        error="CorruptBlock", retry_action="give-up",
                    )
                if METRICS.enabled:
                    METRICS.inc("corrupt_detected", cloud=cloud_id)
                    METRICS.inc(
                        "scheduler_redispatch",
                        cloud=cloud_id, direction=DOWNLOAD,
                    )
                if TELEMETRY.enabled:
                    TELEMETRY.transfer(
                        cloud_id, self.sim.now, False, 0, DOWNLOAD,
                        tenant=self.tenant, retry_action="give-up",
                    )
                if self._degrade is not None:
                    self._degrade.on_failure(cloud_id, self.sim.now)
                self._pulse()
                return
            self._dead[cloud_id] = 0
            if self._degrade is not None:
                self._degrade.on_success(cloud_id, self.sim.now)
            self.estimator.record(
                cloud_id, DOWNLOAD, len(block), self.sim.now - start,
                now=self.sim.now,
            )
            if span is not None:
                TRACE.end(span, t=self.sim.now, bytes=len(block))
            if METRICS.enabled:
                _record_block_metrics(
                    self.estimator, conn, cloud_id, DOWNLOAD,
                    len(block), True, self.sim.now,
                )
            if TELEMETRY.enabled:
                TELEMETRY.transfer(
                    cloud_id, self.sim.now, True, len(block), DOWNLOAD,
                    tenant=self.tenant,
                )
                _telemetry_estimator(
                    self.estimator, conn, cloud_id, DOWNLOAD, self.sim.now
                )
            state.inflight.pop(index, None)
            state.blocks[index] = block
            self.fetch_latencies.append(self.sim.now - start)
            self._note_block_completed(state)
            if self._degrade is not None and state.complete:
                self._cancel_losers(state)
            self._pulse()
        finally:
            if not settled:
                # Killed mid-flight (the other side of the hedge race
                # won): settle the books so _done() and the cursor
                # dispatcher see a consistent world.
                self._inflight_total -= 1
                if state.inflight.get(index) == cloud_id:
                    state.inflight.pop(index, None)
                state.inflight_since.pop(index, None)
                state.inflight_proc.pop(index, None)
                if span is not None:
                    TRACE.end(
                        span, t=self.sim.now, error="HedgeCancelled",
                        retry_action="cancelled",
                    )

    def _next_request(self, cloud_id: str):
        """Pick the next (state, block index) for an idle connection.

        Dynamic mode walks this cloud's own candidate list (only the
        segments it holds blocks of) from a cursor that permanently
        skips the completed/exhausted prefix — amortized O(1) per block.
        Temporarily blocked states (saturated by in-flight requests, or
        deferred to faster clouds) do not advance the cursor, because
        they can become requestable again.  The static baseline keeps
        the reference file-gated scan.
        """
        if self._aborted:
            return None
        if self._degrade is not None and not self._degrade.admits(
            cloud_id, self.sim.now
        ):
            # Breaker open or scoreboard-pinned unavailable: no regular
            # dispatch; bounded half-open probes pass through admits().
            return None
        if not self.dynamic:
            return self._next_request_reference(cloud_id)
        if self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold:
            return None
        states = self._cloud_states[cloud_id]
        count = len(states)
        position = self._cloud_ptr[cloud_id]
        advancing = True
        while position < count:
            state = states[position]
            self._dispatch_scans += 1
            position += 1
            if state.complete:
                if advancing:
                    self._cloud_ptr[cloud_id] = position
                continue
            index, exhausted = state.candidate_for(cloud_id)
            if index is None:
                if exhausted:
                    if advancing:
                        self._cloud_ptr[cloud_id] = position
                else:
                    advancing = False
                continue
            if state.saturated:
                advancing = False
                continue
            if self._defer_to_faster(state, cloud_id):
                advancing = False
                continue
            return (state, index)
        return None

    def _next_request_reference(self, cloud_id: str):
        """The original O(files x segments) scan — the executable
        specification the cursor dispatcher must match (the equivalence
        tests swap it in), and still the static baseline's path."""
        if self._dead.get(cloud_id, 0) >= self.config.cloud_failure_threshold:
            return None
        for file in self._files:
            for state in self._file_segments[file.path]:
                self._dispatch_scans += 1
                if state.saturated:
                    continue
                index = state.candidate_index(cloud_id)
                if index is None:
                    continue
                if self.dynamic and self._defer_to_faster(state, cloud_id):
                    continue
                return (state, index)
            if not self.dynamic:
                # Static baseline: strictly finish this file first.
                if not all(
                    s.complete for s in self._file_segments[file.path]
                ):
                    return None
        return None

    def _defer_to_faster(self, state: _SegmentDownloadState,
                         cloud_id: str) -> bool:
        """The paper's sorted assignment: the next block goes to the
        idle connection of the *fastest* cloud.  A slower cloud backs
        off whenever strictly-faster clouds can still supply all the
        blocks this segment is missing."""
        needed = state.k - len(state.blocks) - len(state.inflight)
        if needed <= 0:
            return True
        mine = self.estimator.estimate(cloud_id, DOWNLOAD)
        faster_supply = 0
        for index, holder in state.record.locations.items():
            if holder == cloud_id:
                continue
            if index in state.blocks or index in state.inflight:
                continue
            if (index, holder) in state.exhausted:
                continue
            if self._dead.get(holder, 0) >= self.config.cloud_failure_threshold:
                continue
            if self.estimator.estimate(holder, DOWNLOAD) > mine:
                faster_supply += 1
        return faster_supply >= needed

    def _note_block_completed(self, state: _SegmentDownloadState) -> None:
        """Incremental completion stamping (replaces the per-block full
        rescan): segment completion is monotone, so per-file countdowns
        through the segment->files index suffice."""
        now = self.sim.now
        if self._complete_flush:
            # Zero-segment files are vacuously complete; stamp them at
            # the first progress check, as the full rescan used to.
            for path in self._complete_flush:
                report = self._reports[path]
                if report.completed_at is None:
                    report.completed_at = now
            self._complete_flush = []
        if not state.counted_complete and state.complete:
            state.counted_complete = True
            for path in self._state_files[state.record.segment_id]:
                self._pending_complete[path] -= 1
                if self._pending_complete[path] == 0:
                    report = self._reports[path]
                    if report.completed_at is None:
                        report.completed_at = now

    def _done(self) -> bool:
        if self._inflight_total > 0:
            return False
        return all(
            self._next_request(c.cloud_id) is None for c in self.connections
        )

    def _pulse(self) -> None:
        wake, self._wake = self._wake, self.sim.event()
        wake.succeed()
