"""Metadata (de)serialization and at-rest encryption.

The image serializes to canonical JSON (sorted keys, compact
separators) so identical logical states produce identical bytes, then is
DES-CBC encrypted before upload — no cloud provider can read the file
hierarchy (paper §4).  The CBC IV is derived from the plaintext digest,
making serialization fully deterministic (valuable for dedup of
identical metadata and for reproducible tests).

The tiny version file is deliberately *not* encrypted: it contains only
a counter and a device name and must stay as small as possible because
it is polled every τ seconds.
"""

from __future__ import annotations

import hashlib
import json

from ..crypto import decrypt_cbc, encrypt_cbc
from .metadata import SyncFolderImage, VersionStamp

__all__ = [
    "serialize_image",
    "deserialize_image",
    "serialize_version",
    "deserialize_version",
    "canonical_json",
]


def canonical_json(payload: dict) -> bytes:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def serialize_image(image: SyncFolderImage, key: bytes) -> bytes:
    """Encode and encrypt a SyncFolderImage for cloud storage."""
    plaintext = canonical_json(image.to_dict())
    iv = hashlib.sha1(plaintext).digest()[:8]
    return encrypt_cbc(key, plaintext, iv)


def deserialize_image(blob: bytes, key: bytes) -> SyncFolderImage:
    """Decrypt and decode a SyncFolderImage fetched from a cloud."""
    plaintext = decrypt_cbc(key, blob)
    return SyncFolderImage.from_dict(json.loads(plaintext.decode()))


def serialize_version(stamp: VersionStamp) -> bytes:
    return canonical_json(stamp.to_dict())


def deserialize_version(blob: bytes) -> VersionStamp:
    return VersionStamp.from_dict(json.loads(blob.decode()))
