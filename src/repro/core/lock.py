"""Quorum-based distributed mutual exclusion over cloud files (paper §5.2).

The lock is built from nothing but the five RESTful calls:

* to acquire, a device uploads an **empty lock file** named after itself
  into a dedicated lock directory on every cloud, then lists each lock
  directory; it holds a cloud's lock iff its own file is the only
  (non-stale) lock file there, and holds *the* lock iff it locks a
  majority (quorum) of clouds;
* contention is resolved by withdrawing (deleting one's lock files
  everywhere) and retrying after a random backoff;
* crash tolerance needs no synchronized clocks: a holder refreshes its
  lock files periodically (re-upload → new server mtime); any client
  that observes the *same* (name, mtime) pair for longer than ΔT deems
  it obsolete and deletes it — **lock breaking**.

Correctness rests only on read-after-write consistency of each cloud,
which every CCS provides.
"""

from __future__ import annotations

import posixpath
from typing import Dict, Sequence, Tuple

import numpy as np

from ..cloud import CloudAPI
from ..obs import METRICS, TRACE
from ..obs.tracer import ctx_attrs as _ctx_attrs
from ..simkernel import Interrupt, Simulator
from .config import UniDriveConfig
from .retry import RetryPolicy
from .util import gather_safe

__all__ = ["QuorumLock", "LockTimeout"]


class LockTimeout(Exception):
    """Raised when the quorum could not be acquired within the budget."""


class QuorumLock:
    """One device's handle on the multi-cloud metadata lock."""

    def __init__(
        self,
        sim: Simulator,
        connections: Sequence[CloudAPI],
        device: str,
        config: UniDriveConfig,
        rng: np.random.Generator,
    ):
        if not connections:
            raise ValueError("need at least one cloud connection")
        self.sim = sim
        self.connections = list(connections)
        self.device = device
        self.config = config
        self._rng = rng
        self.held = False
        self._refresher = None
        # Correlation context for the current sync round; the owning
        # client stamps a (trace_id, parent sid) pair here before
        # acquiring so lock spans join the round's trace.  Safe as an
        # attribute (unlike connection-level state) because one lock
        # belongs to exactly one client process.
        self.trace_ctx = None
        # (trace_id, lock_acquire sid) while an acquire/hold is in
        # flight: the lock-file uploads it issues (quorum rounds and
        # refresh keepalives) join the acquire's trace through this.
        self._op_ctx = None
        # Optional DeadlineBudget the owning client stamps per sync
        # round (degradation control plane): acquire() clamps its own
        # timeout to the round's remaining time so a contended lock
        # cannot outspend the round deadline.
        self.budget = None
        # (cloud_id, file name, server mtime) -> local time first observed.
        # Pruned against every successful listing (see _try_once): a key
        # is only meaningful while its exact (name, mtime) pair is still
        # present, and every lock refresh mints a new mtime, so keeping
        # history forever would grow without bound.
        self._first_seen: Dict[Tuple[str, str, float], float] = {}
        # Backoff schedule between acquisition rounds: same unified
        # policy as the data plane, capped by the lock's own knob.
        self._backoff = RetryPolicy(
            max_attempts=2**30,  # acquire() is bounded by time, not count
            base_delay=0.4,
            max_delay=config.lock_backoff_max,
            multiplier=1.6,
            jitter=0.75,
        )
        # Withdrawal deletes must actually land before this contender
        # sleeps: a lock file left behind by one transient delete failure
        # reads as a live contender to every peer, stalling the winner's
        # next acquisition until the ΔT staleness break.  A small retry
        # budget absorbs blips; truly-down clouds still fail fast.
        self._withdraw_retry = RetryPolicy(
            max_attempts=3,
            base_delay=0.2,
            max_delay=2.0,
            multiplier=2.0,
            jitter=0.5,
        )

    @property
    def lock_file_name(self) -> str:
        return f"lock_{self.device}"

    @property
    def lock_path(self) -> str:
        return posixpath.join(self.config.lock_dir, self.lock_file_name)

    @property
    def quorum(self) -> int:
        return len(self.connections) // 2 + 1

    # -- acquisition -------------------------------------------------------

    def acquire(self):
        """Acquire the quorum lock, retrying with random backoff.

        Raises :class:`LockTimeout` once ``lock_acquire_timeout`` virtual
        seconds elapse without reaching a quorum.  The budget is a time
        window (not an attempt count) so that a contender outlives both a
        long-held lock and the ΔT needed to break a crashed holder's.
        """
        if self.held:
            raise RuntimeError(f"{self.device} already holds the lock")
        timeout = self.config.lock_acquire_timeout
        if self.budget is not None:
            timeout = self.budget.clamp(timeout)
        deadline = self.sim.now + timeout
        span = None
        if TRACE.enabled:
            sid = TRACE.tracer.next_id()
            attrs = _ctx_attrs(self.trace_ctx, sid)
            span = TRACE.begin(
                "lock_acquire", t=self.sim.now, track=self.device,
                **attrs,
            )
            self._op_ctx = (attrs.get("trace_id", sid), sid)
        attempt = 0
        try:
            while True:
                locked = yield from self._try_once()
                if locked >= self.quorum:
                    self.held = True
                    self._refresher = self.sim.process(self._refresh_loop())
                    if span is not None:
                        TRACE.end(span, t=self.sim.now,
                                  rounds=attempt + 1, locked=locked)
                    if METRICS.enabled:
                        METRICS.inc("lock_acquired", device=self.device)
                        if attempt:
                            METRICS.inc("lock_contention_cycles", attempt,
                                        device=self.device)
                    return
                yield from self._withdraw()
                if self.sim.now >= deadline:
                    self._op_ctx = None
                    if span is not None:
                        TRACE.end(span, t=self.sim.now,
                                  rounds=attempt + 1, error="LockTimeout")
                    if METRICS.enabled:
                        METRICS.inc("lock_timeouts", device=self.device)
                        if attempt:
                            METRICS.inc("lock_contention_cycles", attempt,
                                        device=self.device)
                    raise LockTimeout(
                        f"{self.device}: no quorum within {timeout:.0f}s"
                    )
                backoff = self._backoff.backoff(attempt, self._rng)
                attempt += 1
                yield self.sim.timeout(backoff)
        except LockTimeout:
            raise
        except Exception:
            # Interrupted (or otherwise aborted) mid-round: _try_once
            # may already have uploaded our lock files.  Leaving them
            # behind would make every peer wait out the ΔT staleness
            # window before breaking them — withdraw before
            # propagating.  (A hard process kill skips this cleanup,
            # exactly like a real crash; the journal's lock_pending
            # flag lets the owner clean up on resume.)
            self._op_ctx = None
            if span is not None:
                TRACE.end(span, t=self.sim.now,
                          rounds=attempt + 1, error="aborted")
            yield from self._withdraw()
            raise

    def release(self):
        """Release by deleting our lock files everywhere (best effort)."""
        if self._refresher is not None and self._refresher.is_alive:
            self._refresher.interrupt("released")
        self._refresher = None
        self.held = False
        self._op_ctx = None
        yield from self._withdraw()

    def cleanup(self):
        """Withdraw any lock files this *device* left on the clouds.

        Used on crash recovery: a device that died between uploading
        lock files and releasing them finds ``lock_pending`` in its
        journal and deletes its own stale files instead of making peers
        wait out the ΔT staleness break.  Safe to call when no files
        exist (deletes are best-effort).
        """
        if self.held:
            raise RuntimeError(f"{self.device} holds the lock; release it")
        yield from self._withdraw()

    # -- internals -------------------------------------------------------

    def _try_once(self):
        """One acquisition round; returns the number of clouds locked."""
        yield from gather_safe(
            self.sim,
            [conn.upload(self.lock_path, b"", ctx=self._op_ctx)
             for conn in self.connections],
        )
        listings = yield from gather_safe(
            self.sim,
            [
                conn.list_folder(self.config.lock_dir)
                for conn in self.connections
            ],
        )
        locked = 0
        breakers = []
        present: set = set()
        responded: set = set()
        for conn, (ok, entries) in zip(self.connections, listings):
            if not ok:
                continue
            responded.add(conn.cloud_id)
            mine = False
            contenders = 0
            for entry in entries:
                if entry.is_folder:
                    continue
                if entry.name == self.lock_file_name:
                    mine = True
                    continue
                key = (conn.cloud_id, entry.name, entry.mtime)
                present.add(key)
                first = self._first_seen.setdefault(key, self.sim.now)
                if self.sim.now - first > self.config.lock_stale_seconds:
                    # Obsolete lock from a crashed device: break it.
                    breakers.append(conn.delete(entry.path))
                    if TRACE.enabled:
                        TRACE.event(
                            "lock_break",
                            t=self.sim.now,
                            track=conn.cloud_id,
                            victim=entry.name,
                            breaker=self.device,
                        )
                    if METRICS.enabled:
                        METRICS.inc("lock_breaks", cloud=conn.cloud_id)
                else:
                    contenders += 1
            if mine and contenders == 0:
                locked += 1
        # Prune observations whose (name, mtime) pair vanished from a
        # cloud that answered this round — released locks and refreshed
        # mtimes would otherwise accumulate forever.  Clouds that failed
        # to list keep their history: a blip must not reset staleness
        # clocks for locks we are waiting out.
        if responded:
            self._first_seen = {
                key: first
                for key, first in self._first_seen.items()
                if key[0] not in responded or key in present
            }
        if breakers:
            yield from gather_safe(self.sim, breakers)
        return locked

    def _withdraw(self):
        """Delete our lock files everywhere, retrying transient failures.

        Ordered before the caller's backoff sleep (acquire() yields from
        this *then* sleeps), so by the time a losing contender parks, its
        files are gone from every reachable cloud and the round's winner
        is not blocked until the staleness break.  Unreachable clouds
        fail fast here exactly as in the data plane; their leftover files
        age out via ΔT like any crashed device's.
        """
        yield from gather_safe(
            self.sim,
            [
                self._withdraw_retry.run(
                    self.sim,
                    lambda conn=conn: conn.delete(self.lock_path),
                    rng=self._rng,
                )
                for conn in self.connections
            ],
        )

    def _refresh_loop(self):
        """Keep our lock files fresh so peers don't break them."""
        period = self.config.lock_stale_seconds / 3.0
        try:
            while True:
                yield self.sim.timeout(period)
                yield from gather_safe(
                    self.sim,
                    [
                        conn.upload(self.lock_path, b"", ctx=self._op_ctx)
                        for conn in self.connections
                    ],
                )
        except Interrupt:
            return
