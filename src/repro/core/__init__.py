"""UniDrive core: control plane, data plane, client, and baselines."""

from .baselines import (
    NATIVE_OVERHEAD,
    IntuitiveMultiCloud,
    MultiCloudBenchmark,
    NativeClient,
    TransferOutcome,
    UniDriveTransfer,
)
from .client import SyncError, SyncReport, UniDriveClient
from .config import UniDriveConfig
from .degrade import (
    CircuitBreaker,
    DeadlineBudget,
    DegradeController,
)
from .deltasync import DeltaLog, should_merge
from .journal import SyncJournal
from .lock import LockTimeout, QuorumLock
from .merge import (
    LAST_WRITER_WINS,
    PER_PATH,
    RETAIN_BOTH,
    MergePolicy,
    MergeResult,
    diff_images,
    merge_images,
)
from .metadata import (
    FileEntry,
    FileSnapshot,
    SegmentRecord,
    SyncFolderImage,
    VersionStamp,
)
from .pipeline import BlockPipeline, block_hash
from .placement import (
    fair_share,
    fair_share_assignment,
    max_block_count,
    max_blocks_per_cloud,
    normal_block_count,
    rebalance_on_add,
    rebalance_on_remove,
)
from .scrub import RepairReport, ScrubReport, Scrubber
from .probing import DOWNLOAD, UPLOAD, ThroughputEstimator
from .retry import FAIL_FAST, GIVE_UP, RETRY, RetryPolicy
from .scheduler import (
    DownloadBatchReport,
    DownloadScheduler,
    FileDownload,
    FileDownloadReport,
    FileUpload,
    FileUploadReport,
    UploadBatchReport,
    UploadScheduler,
)

__all__ = [
    "BlockPipeline",
    "CircuitBreaker",
    "DOWNLOAD",
    "DeadlineBudget",
    "DegradeController",
    "DeltaLog",
    "FAIL_FAST",
    "GIVE_UP",
    "RETRY",
    "RetryPolicy",
    "DownloadBatchReport",
    "DownloadScheduler",
    "FileDownload",
    "FileDownloadReport",
    "FileEntry",
    "FileSnapshot",
    "FileUpload",
    "FileUploadReport",
    "IntuitiveMultiCloud",
    "LAST_WRITER_WINS",
    "LockTimeout",
    "MergePolicy",
    "MergeResult",
    "PER_PATH",
    "RETAIN_BOTH",
    "MultiCloudBenchmark",
    "NATIVE_OVERHEAD",
    "NativeClient",
    "QuorumLock",
    "RepairReport",
    "ScrubReport",
    "Scrubber",
    "SegmentRecord",
    "SyncError",
    "SyncFolderImage",
    "SyncJournal",
    "SyncReport",
    "ThroughputEstimator",
    "TransferOutcome",
    "UPLOAD",
    "UniDriveClient",
    "UniDriveConfig",
    "UniDriveTransfer",
    "UploadBatchReport",
    "UploadScheduler",
    "VersionStamp",
    "block_hash",
    "diff_images",
    "fair_share",
    "fair_share_assignment",
    "max_block_count",
    "max_blocks_per_cloud",
    "merge_images",
    "normal_block_count",
    "rebalance_on_add",
    "rebalance_on_remove",
    "should_merge",
]
