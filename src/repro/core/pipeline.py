"""File ⇄ segments ⇄ erasure-coded blocks (paper §6.1).

Upload direction: a file is content-defined-chunked into segments; each
segment is encoded with a non-systematic (n, k) Reed-Solomon code where
``n = max_blocks_per_cloud(k, K_s) * N`` — enough distinct blocks to
feed over-provisioning without ever violating the security cap.

Download direction: any k blocks of each segment reconstruct it; the
segments concatenate (in snapshot order) back into the file.
"""

from __future__ import annotations

import posixpath
import time
from collections import OrderedDict
from typing import Dict, List

import numpy as np

from ..chunking import Segment, Segmenter
from ..codec import EncodeState, ReedSolomonCode
from ..obs import METRICS, TRACE
from .config import UniDriveConfig
from .metadata import SegmentRecord
from .placement import max_block_count

__all__ = ["BlockPipeline", "block_hash"]


def block_hash(block: bytes) -> str:
    """Wrapping 64-bit lane sum plus length — the integrity fingerprint.

    The adversary here is bit rot, not forgery (the same stance ZFS
    takes with its default non-cryptographic scrub checksum), so the
    fingerprint trades collision resistance for memory-bandwidth
    speed: every block rides the download hot path and every one is
    verified, which caps the affordable cost at a few percent of the
    decode wall clock (``BENCH_durability.json`` enforces <= 3%, and
    a SHA-1 here measures ~15%).  The digest sums the little-endian
    64-bit lanes mod 2**64 and appends the byte length: any change
    confined to one lane is always detected (a nonzero delta cannot
    vanish mod 2**64), truncation and padding games are caught by the
    length, and independent multi-lane rot escapes with probability
    ~2**-64.  Lane-permuting corruptions are the blind spot — a
    failure mode bit rot does not produce.
    """
    size = len(block)
    pad = -size % 8
    if pad:
        block = block + b"\0" * pad
    lanes = np.frombuffer(block, dtype="<u8")
    total = int(np.add.reduce(lanes)) & 0xFFFFFFFFFFFFFFFF
    return f"{total:016x}{size:08x}"

#: Segments whose padded shard matrices stay resident.  Each entry costs
#: ~theta bytes (4 MB at the paper default); schedulers touch segments
#: roughly in file order, so a handful of entries absorbs nearly every
#: repeat encode of a batch.
DEFAULT_ENCODE_CACHE_SEGMENTS = 8


class BlockPipeline:
    """Transform between file bytes and cloud block files.

    Semantically a pure function of its inputs; internally it keeps a
    small LRU of per-segment :class:`~repro.codec.EncodeState` objects
    so that producing the i-th block of a segment does not re-pad and
    re-copy the whole segment for every block (see :meth:`encode_block`).
    """

    def __init__(self, config: UniDriveConfig, n_clouds: int,
                 encode_cache_segments: int = DEFAULT_ENCODE_CACHE_SEGMENTS):
        config.validate(n_clouds)
        self.config = config
        self.n_clouds = n_clouds
        self.segmenter = Segmenter(theta=config.theta)
        self.n = max_block_count(config.k_blocks, config.k_security, n_clouds)
        self.k = config.k_blocks
        self.code = ReedSolomonCode(self.n, self.k, systematic=False)
        self._encode_cache: "OrderedDict[str, EncodeState]" = OrderedDict()
        self._encode_cache_segments = max(1, encode_cache_segments)

    # -- encode ------------------------------------------------------------

    def segment_file(self, content: bytes) -> List[Segment]:
        """Content-defined segmentation with stable IDs (dedup keys)."""
        return self.segmenter.split(content)

    def make_record(self, segment: Segment) -> SegmentRecord:
        """Metadata record for a (new) segment; locations start empty."""
        return SegmentRecord(
            segment_id=segment.segment_id,
            size=segment.size,
            n=self.n,
            k=self.k,
        )

    def encode_segment(self, segment: Segment) -> List[bytes]:
        """All ``n`` parity blocks of a segment (immutable once created)."""
        return self.code.encode(segment.data)

    def encode_state(self, segment_id: str, data: bytes) -> EncodeState:
        """The cached per-segment encoding state, building it on a miss.

        Segment content is immutable and content-addressed (the id is
        the SHA-1 of the data), so cache entries can never go stale.
        """
        state = self._encode_cache.get(segment_id)
        if state is None:
            if TRACE.enabled:
                # Encoding is host CPU work, not simulated time: the span
                # sits at the tracer clock (zero sim width) and carries
                # the wall-clock cost as an attribute instead.
                span = TRACE.begin(
                    "encode", track="codec",
                    seg=segment_id[:12], bytes=len(data),
                )
                wall = time.perf_counter()
                state = self.code.prepare(data)
                TRACE.end(
                    span, wall_ms=(time.perf_counter() - wall) * 1e3
                )
            else:
                state = self.code.prepare(data)
            if METRICS.enabled:
                METRICS.inc("encode_cache", result="miss")
            self._encode_cache[segment_id] = state
            while len(self._encode_cache) > self._encode_cache_segments:
                self._encode_cache.popitem(last=False)
        else:
            if METRICS.enabled:
                METRICS.inc("encode_cache", result="hit")
            self._encode_cache.move_to_end(segment_id)
        return state

    def encode_block(self, segment_id: str, data: bytes, index: int) -> bytes:
        """Block ``index`` of a segment via the shard cache.

        The hot path for the upload schedulers: the padded ``(k, size)``
        shard matrix is built once per segment and every block is then a
        single cached row-matmul.
        """
        return self.encode_state(segment_id, data).block(index)

    def block_path(self, record: SegmentRecord, index: int) -> str:
        """Cloud-side path of one block file."""
        return posixpath.join(
            self.config.blocks_dir, record.block_name(index)
        )

    def block_size(self, record: SegmentRecord) -> int:
        """Exact byte length every block of a segment must have.

        Shallow scrub audits compare cloud-reported sizes against this
        without downloading anything.
        """
        return self.code.shard_size(record.size)

    # -- decode ------------------------------------------------------------

    def decode_segment(self, record: SegmentRecord,
                       blocks: Dict[int, bytes]) -> bytes:
        """Reconstruct one segment from any k of its blocks."""
        return self.code.decode(blocks, record.size)

    def assemble_file(self, segment_contents: List[bytes]) -> bytes:
        """Concatenate decoded segments in snapshot order."""
        return b"".join(segment_contents)
