"""File ⇄ segments ⇄ erasure-coded blocks (paper §6.1).

Upload direction: a file is content-defined-chunked into segments; each
segment is encoded with a non-systematic (n, k) Reed-Solomon code where
``n = max_blocks_per_cloud(k, K_s) * N`` — enough distinct blocks to
feed over-provisioning without ever violating the security cap.

Download direction: any k blocks of each segment reconstruct it; the
segments concatenate (in snapshot order) back into the file.
"""

from __future__ import annotations

import posixpath
from typing import Dict, List

from ..chunking import Segment, Segmenter
from ..codec import ReedSolomonCode
from .config import UniDriveConfig
from .metadata import SegmentRecord
from .placement import max_block_count

__all__ = ["BlockPipeline"]


class BlockPipeline:
    """Stateless transform between file bytes and cloud block files."""

    def __init__(self, config: UniDriveConfig, n_clouds: int):
        config.validate(n_clouds)
        self.config = config
        self.n_clouds = n_clouds
        self.segmenter = Segmenter(theta=config.theta)
        self.n = max_block_count(config.k_blocks, config.k_security, n_clouds)
        self.k = config.k_blocks
        self.code = ReedSolomonCode(self.n, self.k, systematic=False)

    # -- encode ------------------------------------------------------------

    def segment_file(self, content: bytes) -> List[Segment]:
        """Content-defined segmentation with stable IDs (dedup keys)."""
        return self.segmenter.split(content)

    def make_record(self, segment: Segment) -> SegmentRecord:
        """Metadata record for a (new) segment; locations start empty."""
        return SegmentRecord(
            segment_id=segment.segment_id,
            size=segment.size,
            n=self.n,
            k=self.k,
        )

    def encode_segment(self, segment: Segment) -> List[bytes]:
        """All ``n`` parity blocks of a segment (immutable once created)."""
        return self.code.encode(segment.data)

    def block_path(self, record: SegmentRecord, index: int) -> str:
        """Cloud-side path of one block file."""
        return posixpath.join(
            self.config.blocks_dir, record.block_name(index)
        )

    # -- decode ------------------------------------------------------------

    def decode_segment(self, record: SegmentRecord,
                       blocks: Dict[int, bytes]) -> bytes:
        """Reconstruct one segment from any k of its blocks."""
        return self.code.decode(blocks, record.size)

    def assemble_file(self, segment_contents: List[bytes]) -> bytes:
        """Concatenate decoded segments in snapshot order."""
        return b"".join(segment_contents)
