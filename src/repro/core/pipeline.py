"""File ⇄ segments ⇄ erasure-coded blocks (paper §6.1).

Upload direction: a file is content-defined-chunked into segments; each
segment is encoded with a non-systematic (n, k) Reed-Solomon code where
``n = max_blocks_per_cloud(k, K_s) * N`` — enough distinct blocks to
feed over-provisioning without ever violating the security cap.

Download direction: any k blocks of each segment reconstruct it; the
segments concatenate (in snapshot order) back into the file.
"""

from __future__ import annotations

import posixpath
import time
from collections import OrderedDict
from typing import Dict, List

import numpy as np

from ..chunking import Segment, Segmenter, SegmentView
from ..codec import EncodeState, ReedSolomonCode
from ..obs import METRICS, TRACE
from .config import UniDriveConfig
from .metadata import SegmentRecord
from .placement import max_block_count

__all__ = ["BlockPipeline", "SyntheticPayload", "block_hash",
           "block_hash_rows", "block_hash_many"]

_LANE_MASK = 0xFFFFFFFFFFFFFFFF
_U8LE = np.dtype("<u8")


def block_hash(block: bytes) -> str:
    """Wrapping 64-bit lane sum plus length — the integrity fingerprint.

    The adversary here is bit rot, not forgery (the same stance ZFS
    takes with its default non-cryptographic scrub checksum), so the
    fingerprint trades collision resistance for memory-bandwidth
    speed: every block rides the download hot path and every one is
    verified, which caps the affordable cost at a few percent of the
    decode wall clock (``BENCH_durability.json`` enforces <= 5%
    against the post-fusion data plane, and a SHA-1 here measures an
    order of magnitude more).  The digest sums the little-endian
    64-bit lanes mod 2**64 and appends the byte length: any change
    confined to one lane is always detected (a nonzero delta cannot
    vanish mod 2**64), truncation and padding games are caught by the
    length, and independent multi-lane rot escapes with probability
    ~2**-64.  Lane-permuting corruptions are the blind spot — a
    failure mode bit rot does not produce.
    """
    size = len(block)
    full = size & ~7
    total = 0
    if full:
        # The cached dtype object skips np.frombuffer's per-call
        # dtype-string parse — this function runs once per fetched
        # block, so even sub-microsecond per-call costs are measurable
        # in the verify-overhead budget.
        lanes = np.frombuffer(block, _U8LE, full >> 3)
        total = int(np.add.reduce(lanes))
    if size > full:
        # The ragged tail, zero-extended to a full lane — same value
        # padding with b"\\0" would produce, without copying the block.
        total += int.from_bytes(block[full:], "little")
    return f"{total & _LANE_MASK:016x}{size:08x}"


def block_hash_rows(rows: np.ndarray, size: int) -> List[str]:
    """Batched :func:`block_hash` over the rows of a 2-D uint8 matrix.

    ``rows`` must be C-contiguous with a multiple-of-8 width whose
    columns beyond ``size`` are zero (the natural shape of an encoded
    segment matrix, whose shard padding survives GF(256) encoding as
    zeros).  One ``np.add.reduce`` fingerprints every row; digests are
    identical to ``block_hash(row[:size].tobytes())``.
    """
    lanes = rows.view("<u8")
    totals = np.add.reduce(lanes, axis=1, dtype=np.uint64)
    return [f"{int(total):016x}{size:08x}" for total in totals]


def block_hash_many(blocks: List[bytes]) -> List[str]:
    """:func:`block_hash` of several blocks in one batched reduction.

    Equal-length blocks (the overwhelmingly common case: all blocks of
    a segment share one size) are packed into a single zero-padded
    matrix and fingerprinted by one axis-1 reduction; ragged inputs
    fall back to the scalar path per block.  Digests are identical to
    mapping :func:`block_hash` either way.
    """
    if not blocks:
        return []
    size = len(blocks[0])
    if any(len(block) != size for block in blocks):
        return [block_hash(block) for block in blocks]
    width = -(-max(size, 1) // 8) * 8
    stacked = np.zeros((len(blocks), width), dtype=np.uint8)
    for row, block in enumerate(blocks):
        stacked[row, :size] = np.frombuffer(block, dtype=np.uint8)
    return block_hash_rows(stacked, size)

class SyntheticPayload:
    """Size-only stand-in for segment bytes (fleet-scale trials).

    A million-user trial moves terabytes of *simulated* payload; at
    ~25 MB/s of host-side chunk+encode throughput the data plane — not
    the event kernel — is what makes that population unreachable
    (profiling a 40-user trial puts >80% of wall time in content
    chunking of random bytes whose values nothing ever reads back).
    Upload paths that receive a ``SyntheticPayload`` skip chunking and
    GF(256) encoding entirely and emit zero-filled blocks of the exact
    coded sizes, so the simulated transfer timings, retry behavior and
    traffic accounting are produced by the same scheduler/engine code
    while the host does O(1) work per block.  Content-addressed
    features (dedup, delta sync, integrity verification) are
    meaningless for synthetic payloads — the mode is for upload-only
    population studies, never for the figure-grade paths.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int):
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        self.nbytes = int(nbytes)

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:
        return f"SyntheticPayload({self.nbytes})"


#: Shared zero block buffers by size — synthetic uploads at one theta
#: produce mostly one block size, so the cache is tiny; entries are
#: immutable ``bytes`` safely shared across schedulers and stores.
_ZERO_BLOCKS: "OrderedDict[int, bytes]" = OrderedDict()
_ZERO_BLOCKS_MAX = 64


def _zero_block(size: int) -> bytes:
    block = _ZERO_BLOCKS.get(size)
    if block is None:
        block = bytes(size)
        _ZERO_BLOCKS[size] = block
        while len(_ZERO_BLOCKS) > _ZERO_BLOCKS_MAX:
            _ZERO_BLOCKS.popitem(last=False)
    else:
        _ZERO_BLOCKS.move_to_end(size)
    return block


#: Segments whose padded shard matrices stay resident.  Each entry costs
#: ~theta bytes (4 MB at the paper default); schedulers touch segments
#: roughly in file order, so a handful of entries absorbs nearly every
#: repeat encode of a batch.
DEFAULT_ENCODE_CACHE_SEGMENTS = 8


class BlockPipeline:
    """Transform between file bytes and cloud block files.

    Semantically a pure function of its inputs; internally it keeps a
    small LRU of per-segment :class:`~repro.codec.EncodeState` objects
    so that producing the i-th block of a segment does not re-pad and
    re-copy the whole segment for every block (see :meth:`encode_block`).
    """

    def __init__(self, config: UniDriveConfig, n_clouds: int,
                 encode_cache_segments: int = DEFAULT_ENCODE_CACHE_SEGMENTS):
        config.validate(n_clouds)
        self.config = config
        self.n_clouds = n_clouds
        self.segmenter = Segmenter(theta=config.theta)
        self.n = max_block_count(config.k_blocks, config.k_security, n_clouds)
        self.k = config.k_blocks
        self.code = ReedSolomonCode(self.n, self.k, systematic=False)
        self._encode_cache: "OrderedDict[str, EncodeState]" = OrderedDict()
        self._encode_cache_segments = max(1, encode_cache_segments)

    # -- encode ------------------------------------------------------------

    def segment_file(self, content: bytes) -> List[Segment]:
        """Content-defined segmentation with stable IDs (dedup keys)."""
        return self.segmenter.split(content)

    def ingest_file(self, content: bytes) -> List[SegmentView]:
        """Zero-copy segmentation: same cuts and IDs as
        :meth:`segment_file`, but each segment's data is a read-only
        view of ``content`` — the fused upload path chunks, hashes and
        encodes without ever materializing per-segment ``bytes``.
        """
        return self.segmenter.split_views(content)

    def make_record(self, segment: Segment) -> SegmentRecord:
        """Metadata record for a (new) segment; locations start empty."""
        return SegmentRecord(
            segment_id=segment.segment_id,
            size=segment.size,
            n=self.n,
            k=self.k,
        )

    def encode_segment(self, segment: Segment) -> List[bytes]:
        """All ``n`` parity blocks of a segment (immutable once created)."""
        return self.code.encode(segment.data)

    def encode_state(self, segment_id: str, data: bytes) -> EncodeState:
        """The cached per-segment encoding state, building it on a miss.

        Segment content is immutable and content-addressed (the id is
        the SHA-1 of the data), so cache entries can never go stale.
        """
        state = self._encode_cache.get(segment_id)
        if state is None:
            if TRACE.enabled:
                # Encoding is host CPU work, not simulated time: the span
                # sits at the tracer clock (zero sim width) and carries
                # the wall-clock cost as an attribute instead.
                span = TRACE.begin(
                    "encode", track="codec",
                    seg=segment_id[:12], bytes=len(data),
                )
                wall = time.perf_counter()
                state = self.code.prepare(data)
                TRACE.end(
                    span, wall_ms=(time.perf_counter() - wall) * 1e3
                )
            else:
                state = self.code.prepare(data)
            if METRICS.enabled:
                METRICS.inc("encode_cache", result="miss")
            self._encode_cache[segment_id] = state
            while len(self._encode_cache) > self._encode_cache_segments:
                self._encode_cache.popitem(last=False)
        else:
            if METRICS.enabled:
                METRICS.inc("encode_cache", result="hit")
            self._encode_cache.move_to_end(segment_id)
        return state

    def encode_block(self, segment_id: str, data: bytes, index: int) -> bytes:
        """Block ``index`` of a segment via the shard cache.

        The hot path for the upload schedulers: the padded shard matrix
        is built once per segment, the first block request encodes all
        ``n`` rows in one fused matmul, and every block is then a slice
        of the cached encoded matrix.
        """
        if type(data) is SyntheticPayload:
            return _zero_block(self.code.shard_size(data.nbytes))
        return self.encode_state(segment_id, data).block(index)

    def encode_block_with_digest(self, segment_id: str, data,
                                 index: int) -> tuple:
        """``(block bytes, fingerprint)`` for one block of a segment.

        The fused upload path: digests for *all* blocks of the segment
        come from one batched reduction over the cached encoded matrix
        (:func:`block_hash_rows` — the pad columns are zero by the
        codec's shard-padding invariant), computed once per segment and
        cached on the encode state.  ``data`` may be bytes, a uint8
        segment view, or a :class:`SyntheticPayload` (zero blocks and
        their constant fingerprint, no matrix ever built).
        """
        if type(data) is SyntheticPayload:
            size = self.code.shard_size(data.nbytes)
            return _zero_block(size), f"{0:016x}{size:08x}"
        state = self.encode_state(segment_id, data)
        if state.digests is None:
            state.digests = block_hash_rows(state.matrix(),
                                            state.shard_bytes)
        return state.block(index), state.digests[index]

    def block_path(self, record: SegmentRecord, index: int) -> str:
        """Cloud-side path of one block file."""
        return posixpath.join(
            self.config.blocks_dir, record.block_name(index)
        )

    def block_size(self, record: SegmentRecord) -> int:
        """Exact byte length every block of a segment must have.

        Shallow scrub audits compare cloud-reported sizes against this
        without downloading anything.
        """
        return self.code.shard_size(record.size)

    # -- decode ------------------------------------------------------------

    def decode_segment(self, record: SegmentRecord,
                       blocks: Dict[int, bytes]) -> bytes:
        """Reconstruct one segment from any k of its blocks."""
        return self.code.decode(blocks, record.size)

    def assemble_file(self, segment_contents: List[bytes]) -> bytes:
        """Concatenate decoded segments in snapshot order."""
        return b"".join(segment_contents)
