"""The comparison systems from the paper's evaluation (§7.1).

* :class:`NativeClient` — one CCS's official app.  It moves the whole
  file through a single cloud using that cloud's chunked, multi-
  connection transfer protocol, paying that app's protocol overhead
  (Table 3 reports Dropbox ≈7%, OneDrive ≈2%, …).
* :class:`IntuitiveMultiCloud` — the straw-man: chop a file into N
  pieces and drop piece *i* into cloud *i*'s native sync folder.  Every
  file involves every cloud, so completion is gated by the slowest one
  and overheads add up.
* The **multi-cloud benchmark** (RACS/DepSky-like: erasure coding and
  even static placement, but no over-provisioning or dynamic
  scheduling) is :class:`~repro.core.scheduler.UploadScheduler` with
  ``over_provision=False, dynamic=False``; the thin wrapper here gives
  it the same call shape as the other baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cloud import CloudAPI, CloudError
from ..simkernel import AllOf, Simulator
from .config import UniDriveConfig
from .metadata import SegmentRecord
from .pipeline import BlockPipeline, SyntheticPayload
from .scheduler import (
    DownloadScheduler,
    FileDownload,
    FileUpload,
    UploadScheduler,
)
from .util import gather_safe

__all__ = [
    "NATIVE_CONNECTIONS",
    "NativeClient",
    "IntuitiveMultiCloud",
    "MultiCloudBenchmark",
    "UniDriveTransfer",
    "TransferOutcome",
    "NATIVE_OVERHEAD",
]

#: Effective concurrent transfer connections of each native app.  The
#: paper (§7.1) notes the apps differ widely (Dropbox allows 8 HTTP
#: connections, OneDrive only 2) while UniDrive uses 5 per cloud; these
#: are the effective parallel-transfer counts our model gives them.
NATIVE_CONNECTIONS = {
    "dropbox": 4,
    "onedrive": 2,
    "gdrive": 4,
    "baidupcs": 3,
    "dbank": 2,
}

#: Native app protocol overhead (fraction of payload), from Table 3.
NATIVE_OVERHEAD = {
    "dropbox": 0.0707,
    "onedrive": 0.0204,
    "gdrive": 0.0189,
    "baidupcs": 0.0070,
    "dbank": 0.0096,
}

_DEFAULT_OVERHEAD = 0.02
_NATIVE_CHUNK = 4 * 1024 * 1024


@dataclass
class TransferOutcome:
    """Result of one upload/download through any approach.

    For erasure-coded approaches ``finished_at`` is the *available* time
    (the paper's headline metric, §7.1); ``reliable_at`` additionally
    reports when every cloud had its fair share.
    """

    path: str
    size: int
    started_at: float
    finished_at: Optional[float]
    succeeded: bool
    reliable_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at


class NativeClient:
    """Model of a single CCS's official desktop app.

    Files transfer in fixed-size chunks over up to
    ``connections`` parallel HTTP connections, inflated by the app's
    protocol overhead factor.  Transient failures retry per chunk.
    """

    def __init__(self, sim: Simulator, connection: CloudAPI,
                 connections: Optional[int] = None, max_retries: int = 6,
                 overhead: Optional[float] = None):
        self.sim = sim
        self.connection = connection
        self.cloud_id = connection.cloud_id
        self.parallel = (
            connections
            if connections is not None
            else NATIVE_CONNECTIONS.get(self.cloud_id, 4)
        )
        self.max_retries = max_retries
        self.overhead = (
            overhead
            if overhead is not None
            else NATIVE_OVERHEAD.get(self.cloud_id, _DEFAULT_OVERHEAD)
        )

    def _chunks(self, size: int) -> List[int]:
        sizes = []
        remaining = size
        while remaining > 0:
            take = min(remaining, _NATIVE_CHUNK)
            sizes.append(take)
            remaining -= take
        return sizes or [0]

    def _wire_size(self, nbytes: int) -> int:
        return int(nbytes * (1 + self.overhead))

    def upload(self, path: str, content: bytes):
        """Upload a file; generator returns a :class:`TransferOutcome`."""
        started = self.sim.now
        chunks = self._chunks(len(content))
        done = yield from self._pump(path, chunks, content, upload=True)
        return TransferOutcome(
            path, len(content), started,
            self.sim.now if done else None, done,
        )

    def download(self, path: str, size: int):
        """Fetch a file previously stored by this client."""
        started = self.sim.now
        chunks = self._chunks(size)
        done = yield from self._pump(path, chunks, None, upload=False)
        return TransferOutcome(
            path, size, started, self.sim.now if done else None, done
        )

    def _pump(self, path: str, chunks: List[int], content, upload: bool):
        """Move all chunks with bounded parallelism and retries."""
        results: List[bool] = []

        def one(index: int, nbytes: int):
            wire = self._wire_size(nbytes)
            chunk_path = f"{path}.part{index}"
            payload = None
            if upload:
                offset = sum(chunks[:index])
                payload = content[offset:offset + nbytes]
                payload += b"\x00" * (wire - nbytes)  # protocol framing
            for _attempt in range(self.max_retries):
                try:
                    if upload:
                        yield from self.connection.upload(chunk_path, payload)
                    else:
                        yield from self.connection.download(chunk_path)
                    return True
                except CloudError:
                    continue
            return False

        pending = list(enumerate(chunks))
        active = []
        while pending or active:
            while pending and len(active) < self.parallel:
                index, nbytes = pending.pop(0)
                active.append(self.sim.process(one(index, nbytes)))
            finished = yield AllOf(self.sim, active)
            results.extend(finished)
            active = []
        return all(results)


class IntuitiveMultiCloud:
    """Chunk a file into N pieces; each native app syncs one piece.

    Completion requires *every* cloud, so the slowest dominates — the
    behaviour Figure 11 shows for the "intuitive" bars.
    """

    def __init__(self, sim: Simulator, natives: Sequence[NativeClient]):
        if not natives:
            raise ValueError("need at least one native client")
        self.sim = sim
        self.natives = list(natives)

    def upload(self, path: str, content: bytes):
        started = self.sim.now
        n = len(self.natives)
        piece = -(-len(content) // n) if content else 0
        outcomes = yield from gather_safe(
            self.sim,
            [
                native.upload(
                    f"{path}.piece{i}",
                    content[i * piece:(i + 1) * piece],
                )
                for i, native in enumerate(self.natives)
            ],
        )
        ok = all(ok and out.succeeded for ok, out in outcomes)
        return TransferOutcome(
            path, len(content), started, self.sim.now if ok else None, ok
        )

    def download(self, path: str, size: int):
        started = self.sim.now
        n = len(self.natives)
        piece = -(-size // n) if size else 0
        sizes = [
            max(0, min(piece, size - i * piece)) for i in range(n)
        ]
        outcomes = yield from gather_safe(
            self.sim,
            [
                native.download(f"{path}.piece{i}", sizes[i])
                for i, native in enumerate(self.natives)
            ],
        )
        ok = all(ok and out.succeeded for ok, out in outcomes)
        return TransferOutcome(
            path, size, started, self.sim.now if ok else None, ok
        )


class MultiCloudBenchmark:
    """RACS/DepSky-style striping: coded, even, static — no dynamics.

    Same erasure code and placement math as UniDrive, with
    over-provisioning and dynamic scheduling switched off; the measured
    gap to UniDrive isolates the contribution of those two techniques.
    """

    OVER_PROVISION = False
    DYNAMIC = False

    def __init__(self, sim: Simulator, connections: Sequence[CloudAPI],
                 config: UniDriveConfig, estimator=None):
        self.sim = sim
        self.connections = list(connections)
        self.config = config
        self.pipeline = BlockPipeline(config, len(self.connections))
        self.estimator = estimator
        self._records: Dict[str, list] = {}

    def upload(self, path: str, content: bytes):
        segments = [
            (self.pipeline.make_record(seg), seg.data)
            for seg in self.pipeline.segment_file(content)
        ]
        scheduler = UploadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator,
            over_provision=self.OVER_PROVISION, dynamic=self.DYNAMIC,
        )
        batch = yield from scheduler.run_batch(
            [FileUpload(path=path, segments=segments)]
        )
        report = batch.report_for(path)
        self._records[path] = [record for record, _ in segments]
        return TransferOutcome(
            path, len(content), batch.started_at,
            report.available_at, report.available_at is not None,
            reliable_at=report.reliable_at,
        )

    def upload_sized(self, path: str, size: int):
        """Upload ``size`` bytes of synthetic content (fleet trials).

        Same scheduler, placement, retry and traffic accounting as
        :meth:`upload`, but the payload is a
        :class:`~repro.core.pipeline.SyntheticPayload`: segments are
        fixed ``theta``-size spans (content-defined chunking is
        meaningless without content) and blocks are shared zero
        buffers, so the host-side cost per upload is O(blocks) instead
        of O(bytes).  Upload-only: the path is *not* recorded for
        later :meth:`download`.
        """
        theta = max(1, self.config.theta)
        spans = [theta] * (size // theta)
        tail = size - theta * len(spans)
        if tail or not spans:
            spans.append(tail)
        serial = self._synthetic_serial = getattr(
            self, "_synthetic_serial", 0
        ) + 1
        segments = []
        for index, span in enumerate(spans):
            record = SegmentRecord(
                segment_id=f"syn-{serial:08d}-{index}",
                size=span,
                n=self.pipeline.n,
                k=self.pipeline.k,
            )
            segments.append((record, SyntheticPayload(span)))
        scheduler = UploadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator,
            over_provision=self.OVER_PROVISION, dynamic=self.DYNAMIC,
        )
        batch = yield from scheduler.run_batch(
            [FileUpload(path=path, segments=segments)]
        )
        report = batch.report_for(path)
        return TransferOutcome(
            path, size, batch.started_at,
            report.available_at, report.available_at is not None,
            reliable_at=report.reliable_at,
        )

    def upload_batch(self, items):
        """Upload many (path, content) pairs in one scheduled batch."""
        files = []
        for path, content in items:
            segments = [
                (self.pipeline.make_record(seg), seg.data)
                for seg in self.pipeline.segment_file(content)
            ]
            self._records[path] = [record for record, _ in segments]
            files.append(FileUpload(path=path, segments=segments))
        scheduler = UploadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator,
            over_provision=self.OVER_PROVISION, dynamic=self.DYNAMIC,
        )
        batch = yield from scheduler.run_batch(files)
        return batch

    def download(self, path: str, size: int = 0):
        records = self._records.get(path)
        if records is None:
            raise KeyError(f"{path} was not uploaded through this client")
        scheduler = DownloadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator, dynamic=self.DYNAMIC,
        )
        batch = yield from scheduler.run_batch(
            [FileDownload(path=path, segments=records)]
        )
        report = batch.report_for(path)
        return TransferOutcome(
            path, report.size, batch.started_at,
            report.completed_at, report.content is not None,
        )

    def download_batch(self, paths):
        """Fetch many previously-uploaded paths in one scheduled batch."""
        wants = [
            FileDownload(path=path, segments=self._records[path])
            for path in paths
        ]
        scheduler = DownloadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator, dynamic=self.DYNAMIC,
        )
        batch = yield from scheduler.run_batch(wants)
        return batch


class UniDriveTransfer(MultiCloudBenchmark):
    """UniDrive's data plane as a bare transfer client.

    Same erasure code and placement as the benchmark, with
    over-provisioning and dynamic scheduling enabled — used by the
    micro-benchmarks (Figures 8-12), which measure raw transfer rather
    than full folder synchronization.
    """

    OVER_PROVISION = True
    DYNAMIC = True
