"""The UniDrive client: multi-cloud multi-device file synchronization.

One :class:`UniDriveClient` instance is one device.  It owns

* a local sync folder (any :mod:`repro.fsmodel` filesystem),
* one :class:`~repro.cloud.CloudAPI` connection per enrolled cloud,
* the last-synchronized metadata image ``v_o`` (the merge base),
* a :class:`~repro.core.lock.QuorumLock` for serialized commits.

:meth:`sync` is Algorithm 1 from the paper wrapped around the data
plane: data blocks always travel *before* metadata commits, commits are
serialized by the quorum lock, cloud updates are detected through the
tiny version file, and concurrent edits merge three-way with conflict
copies retained.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cloud import CloudAPI, CloudError, NotFoundError
from ..fsmodel import ChangeKind, FolderWatcher
from ..obs import METRICS, TELEMETRY, TRACE
from ..obs.tracer import ctx_attrs as _ctx_attrs
from ..simkernel import Simulator
from .config import UniDriveConfig
from .degrade import DegradeController
from .deltasync import (
    DeltaLog,
    op_add_segment,
    op_base_version,
    op_delete_file,
    op_resolve_conflict,
    op_set_version,
    op_txn_round,
    op_upsert_file,
    should_merge,
)
from .journal import SyncJournal
from .lock import QuorumLock
from .merge import (
    MergePolicy,
    diff_images,
    merge_images,
    recompute_refcounts,
)
from .metadata import (
    FileSnapshot,
    SegmentRecord,
    SyncFolderImage,
    VersionStamp,
)
from .pipeline import BlockPipeline, block_hash_many
from .placement import fair_share, normal_block_count
from .probing import ThroughputEstimator
from .retry import RetryPolicy
from .scheduler import (
    DownloadScheduler,
    FileDownload,
    FileUpload,
    UploadScheduler,
)
from .serialization import (
    deserialize_image,
    deserialize_version,
    serialize_image,
    serialize_version,
)
from .util import gather_safe

__all__ = ["UniDriveClient", "SyncReport", "SyncError"]


class SyncError(Exception):
    """A sync round could not complete (e.g. metadata quorum failed)."""


@dataclass
class SyncReport:
    """What one :meth:`UniDriveClient.sync` round did."""

    device: str
    started_at: float
    finished_at: float = 0.0
    uploaded_files: List[str] = field(default_factory=list)
    downloaded_files: List[str] = field(default_factory=list)
    deleted_files: List[str] = field(default_factory=list)
    conflicts: List[str] = field(default_factory=list)
    upload_report: Optional[object] = None
    download_report: Optional[object] = None
    committed_version: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def changed_anything(self) -> bool:
        return bool(
            self.uploaded_files
            or self.downloaded_files
            or self.deleted_files
            or self.conflicts
        )


class UniDriveClient:
    """One device running UniDrive against N cloud connections."""

    def __init__(
        self,
        sim: Simulator,
        device: str,
        filesystem,
        connections: Sequence[CloudAPI],
        config: Optional[UniDriveConfig] = None,
        rng: Optional[np.random.Generator] = None,
        estimator: Optional[ThroughputEstimator] = None,
        journal: Optional[SyncJournal] = None,
        conflict_resolver=None,
    ):
        self.sim = sim
        self.device = device
        self.fs = filesystem
        self.connections = list(connections)
        self.config = config or UniDriveConfig()
        self.config.validate(len(self.connections))
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.estimator = estimator or ThroughputEstimator()
        #: Unified failure policy for every metadata-plane request.
        self.retry = RetryPolicy.from_config(self.config)
        #: Degradation control plane (circuit breakers shared across
        #: every batch and metadata operation of this device); None —
        #: and the whole data path byte-identical to pre-degradation
        #: behaviour — unless config.degrade_enabled.
        self.degrade = (
            DegradeController(self.config)
            if self.config.degrade_enabled else None
        )
        #: The in-flight round's DeadlineBudget (None when unbounded
        #: or outside a round).
        self._budget = None
        #: Lifetime hedged-read tallies across download batches (only
        #: advanced when the degradation plane is on).
        self.hedges_fired = 0
        self.hedged_bytes = 0
        self.pipeline = BlockPipeline(self.config, len(self.connections))
        self.lock = QuorumLock(
            sim, self.connections, device, self.config, self.rng
        )
        # Deliberately not primed: files already in the folder when the
        # client starts are *pending changes* until the first sync's
        # bootstrap reconciles them against the cloud image.
        self.watcher = FolderWatcher(filesystem)
        #: How divergent concurrent edits reconcile (see core.merge).
        #: The policy name comes from config so every device on a folder
        #: shares it; ``conflict_resolver`` supplies the callback the
        #: "per-path" policy requires (and must be the same pure
        #: function on every device).
        self.merge_policy = MergePolicy(
            self.config.conflict_policy, conflict_resolver
        )
        #: v_o — the image both this device and the cloud agreed on last.
        self.image = SyncFolderImage(device)
        self._known_remote = VersionStamp(0, "")
        self._pending_changes: Dict[str, ChangeKind] = {}
        self._pending_fetch: set = set()
        # Per-cloud version counters from the most recent poll
        # (_check_cloud_update); _publish_delta consults them to pick a
        # *fresh* cloud to extend the delta from.  None = unreachable or
        # unparseable at poll time.
        self._poll_counters: Dict[str, Optional[int]] = {}
        #: Crash-resume journal.  Pass a restored journal (see
        #: SyncJournal.from_bytes) to resume a round a previous
        #: incarnation of this device died in the middle of.
        self.journal = journal if journal is not None else SyncJournal()
        #: The upload scheduler of the round in flight (crash modelling).
        self._active_upload = None
        #: Trace-correlation context of the round in flight:
        #: ``(trace_id, parent span id)`` while tracing, else None.
        self._trace_ctx = None
        # Metadata traffic accounting (Table 3 experiments).
        self.metadata_bytes = 0
        self.block_bytes = 0

    # -- paths -------------------------------------------------------------

    @property
    def _base_path(self) -> str:
        return posixpath.join(self.config.meta_dir, "base")

    @property
    def _delta_path(self) -> str:
        return posixpath.join(self.config.meta_dir, "delta")

    @property
    def _version_path(self) -> str:
        return posixpath.join(self.config.meta_dir, "version")

    @property
    def _heartbeat_path(self) -> str:
        return posixpath.join(self.config.meta_dir, f"device_{self.device}")

    @property
    def quorum(self) -> int:
        return len(self.connections) // 2 + 1

    # -- public API -------------------------------------------------------

    def sync(self):
        """One synchronization round (Algorithm 1); returns a SyncReport."""
        report = SyncReport(device=self.device, started_at=self.sim.now)
        if self.degrade is not None:
            self._budget = self.degrade.round_budget(self.sim)
            self.lock.budget = self._budget
        span = None
        if TRACE.enabled:
            # The round is the root of this device's causal tree: every
            # batch, block transfer, lock acquisition and netsim flow it
            # spawns carries (trace_id, parent) back to this span.
            sid = TRACE.tracer.next_id()
            span = TRACE.begin("sync_round", t=self.sim.now,
                               track=self.device, trace_id=sid, sid=sid)
            self._trace_ctx = (sid, sid)
            self.lock.trace_ctx = self._trace_ctx
        meta0, blocks0 = self.metadata_bytes, self.block_bytes
        try:
            yield from self._sync_round(report)
        except BaseException as exc:
            if span is not None:
                TRACE.end(span, t=self.sim.now, error=type(exc).__name__)
                self._trace_ctx = None
                self.lock.trace_ctx = None
            if TELEMETRY.enabled:
                TELEMETRY.sync_round(self.device, report.started_at,
                                     self.sim.now, ok=False)
            self._account_round(meta0, blocks0)
            self._budget = None
            self.lock.budget = None
            raise
        report.finished_at = self.sim.now
        if span is not None:
            TRACE.end(
                span, t=self.sim.now,
                uploaded=len(report.uploaded_files),
                downloaded=len(report.downloaded_files),
                deleted=len(report.deleted_files),
                conflicts=len(report.conflicts),
                version=report.committed_version,
            )
            self._trace_ctx = None
            self.lock.trace_ctx = None
        if TELEMETRY.enabled:
            TELEMETRY.sync_round(self.device, report.started_at,
                                 self.sim.now, ok=True)
        self._account_round(meta0, blocks0)
        self._budget = None
        self.lock.budget = None
        return report

    def _sync_round(self, report: SyncReport):
        """The body of Algorithm 1 (split out so :meth:`sync` can close
        the round's trace span on both the success and error paths)."""
        if self.journal.active and self.journal.lock_pending:
            # A previous incarnation of this device died while its lock
            # files might exist on clouds: withdraw them now instead of
            # making peers wait out the ΔT staleness break.
            yield from self.lock.cleanup()
            self.journal.mark_lock(False)
        self._collect_local_changes()
        if self.image.version.counter == 0:
            yield from self._bootstrap(report)
        if self._pending_changes:
            yield from self._commit_local_update(report)
        else:
            remote = yield from self._check_cloud_update()
            if remote is not None:
                yield from self._apply_cloud_only_update(report, remote)
        if self.journal.active and not self._pending_changes:
            # Crash leftovers with no round to fold them into (the file
            # vanished before resume): every journaled block is an
            # orphan against the current image — sweep and retire.
            yield from self._journal_sweep()
        if self._pending_fetch:
            yield from self._materialize(
                self.image, sorted(self._pending_fetch), report
            )
        if report.changed_anything or report.committed_version is not None:
            yield from self._publish_heartbeat()

    def _account_round(self, meta0: int, blocks0: int) -> None:
        """Fold this round's byte-counter deltas into the metrics hub."""
        if not METRICS.enabled:
            return
        if self.metadata_bytes > meta0:
            METRICS.inc("metadata_bytes", self.metadata_bytes - meta0,
                        device=self.device)
        if self.block_bytes > blocks0:
            METRICS.inc("block_bytes", self.block_bytes - blocks0,
                        device=self.device)

    def run_forever(self):
        """Periodic sync loop (interval τ plus small jitter).

        Transient sync failures (no write quorum, lock timeout) are
        retried on the next round — pending changes are preserved.
        """
        from .lock import LockTimeout

        while True:
            try:
                yield from self.sync()
            except (SyncError, LockTimeout):
                if self.lock.held:
                    yield from self.lock.release()
            jitter = self.rng.uniform(0, self.config.check_interval / 10)
            yield self.sim.timeout(self.config.check_interval + jitter)

    # -- first-sync bootstrap ------------------------------------------------

    def _bootstrap(self, report: SyncReport):
        """Reconcile a never-synced device with existing cloud state.

        Handles fresh installs and reinstalls over a populated folder:
        the cloud image is adopted as the merge base, local files whose
        content already matches it stop being "pending changes"
        (re-chunking proves identity — no upload), files missing locally
        are fetched, and a divergent local copy is preserved as a
        conflict file rather than silently overwritten.
        """
        remote = yield from self._check_cloud_update()
        if remote is None:
            return  # empty cloud: pending local files commit normally
        cloud_image = yield from self._fetch_metadata(expect=remote.counter)
        self.image = cloud_image
        self._known_remote = VersionStamp(
            cloud_image.version.counter, cloud_image.version.device
        )
        to_fetch: List[str] = []
        for path, entry in sorted(cloud_image.files.items()):
            if not self.fs.exists(path):
                to_fetch.append(path)
                continue
            local_segments = [
                segment.segment_id
                for segment in self.pipeline.ingest_file(
                    self.fs.read_file(path)
                )
            ]
            if local_segments == entry.current.segment_ids:
                self._pending_changes.pop(path, None)  # already in sync
            else:
                copy_path = f"{path}.conflict-{self.device}"
                self.fs.write_file(
                    copy_path, self.fs.read_file(path), mtime=self.sim.now
                )
                self._pending_changes.pop(path, None)
                self._pending_changes[copy_path] = ChangeKind.ADD
                to_fetch.append(path)
        yield from self._materialize(cloud_image, to_fetch, report)

    # -- local-update path (lines 2-14 of Algorithm 1) -----------------------

    def _collect_local_changes(self) -> None:
        for change in self.watcher.poll():
            self._pending_changes[change.path] = change.kind

    def _commit_local_update(self, report: SyncReport):
        local = self.image.copy()
        committed_paths = set(self._pending_changes)
        plan = self._build_local_image(local, report)
        uploads = plan["uploads"]
        # Write-ahead: the resume map is captured from the journal a
        # crashed incarnation left behind (empty on a normal round),
        # then the round's planned segments are journaled before any
        # block travels.
        resume = self.journal.resume_map()
        self.journal.begin(self.image.version.counter, plan["new_records"])
        # Data blocks travel before any metadata becomes visible.
        if uploads:
            span = None
            batch_ctx = None
            if TRACE.enabled:
                sid = TRACE.tracer.next_id()
                attrs = _ctx_attrs(self._trace_ctx, sid)
                span = TRACE.begin(
                    "upload_batch", t=self.sim.now, track=self.device,
                    files=len(uploads),
                    bytes=sum(u.size for u in uploads), **attrs,
                )
                batch_ctx = (attrs.get("trace_id", sid), sid)
            scheduler = UploadScheduler(
                self.sim, self.connections, self.pipeline, self.config,
                estimator=self.estimator, retry_policy=self.retry,
                rng=self.rng,
                on_block_uploaded=self.journal.record_block,
                resume=resume,
                trace_ctx=batch_ctx, tenant=self.device,
                degrade=self.degrade, budget=self._budget,
            )
            self._active_upload = scheduler
            upload_report = yield from scheduler.run_batch(uploads)
            self._active_upload = None
            if span is not None:
                TRACE.end(
                    span, t=self.sim.now,
                    failed_requests=upload_report.failed_requests,
                )
            report.upload_report = upload_report
            self.block_bytes += sum(
                int(f.size) for f in upload_report.files
            )
            unavailable = [
                f.path for f in upload_report.files if f.available_at is None
            ]
            if unavailable:
                raise SyncError(
                    f"{self.device}: blocks unavailable for {unavailable}"
                )
            if self.degrade is not None:
                self._record_debt(plan["new_records"])
        self.journal.mark_lock(True)
        try:
            yield from self.lock.acquire()
        except Exception:
            # acquire() withdrew its lock files before propagating, so
            # a resumed device need not clean up after this failure.  (A
            # hard kill skips both the withdraw and this line — then the
            # flag stays set and resume withdraws, as it must.)
            self.journal.mark_lock(False)
            raise
        try:
            remote = yield from self._check_cloud_update()
            if remote is not None:
                cloud_image = yield from self._fetch_metadata(
                    expect=remote.counter
                )
                result = merge_images(
                    self.image, local, cloud_image, self.merge_policy
                )
                merged = result.image
                report.conflicts.extend(result.conflicts)
                next_counter = max(
                    local.version.counter, cloud_image.version.counter
                ) + 1
                merged.version = VersionStamp(next_counter, self.device)
                yield from self._publish_base(merged)
                previous = self.image
                self.image = merged
                self._handle_conflict_copies(result.conflicts, merged)
                yield from self._materialize_diff(previous, merged, report)
            else:
                local.version = VersionStamp(
                    local.version.counter + 1, self.device
                )
                # Ops are serialized only now, after uploads filled in
                # every record's block locations (Cloud-ID callbacks).
                ops = [op_add_segment(r) for r in plan["new_records"]]
                ops += [op_upsert_file(snap) for snap in plan["upserts"]]
                ops += [op_delete_file(p) for p in plan["deletes"]]
                ops = self._seal_round(ops, local.version.counter)
                yield from self._publish_delta(local, ops)
                self.image = local
            self._known_remote = VersionStamp(
                self.image.version.counter, self.image.version.device
            )
            report.committed_version = self.image.version.counter
        finally:
            yield from self.lock.release()
            self.journal.mark_lock(False)
        for path in committed_paths:
            self._pending_changes.pop(path, None)
        self._collect_garbage()
        yield from self._journal_sweep()

    def _record_debt(self, records: List[SegmentRecord]) -> None:
        """Brownout accounting: planned blocks that did not land become
        redundancy debt on their segment records.

        Runs after the upload batch, before the round's ops are
        serialized, so the debt travels inside the committed metadata
        and any device's scrubber can repay it once the missing cloud
        readmits traffic.  Only the *fair-share* indices count as debt:
        indices past ``fair_share * N`` are the dynamic scheduler's
        opportunistic over-provisioning pool and are legitimately
        unplaced on a healthy run.  A commit below ``k +
        brownout_floor`` placed blocks is refused outright — debt is
        for lost *redundancy*, never for lost *readability margin*.
        """
        floor = self.config.k_blocks + self.config.brownout_floor
        for record in records:
            normal = min(
                record.n,
                normal_block_count(
                    record.k, self.config.k_reliability,
                    len(self.connections),
                ),
            )
            missing = sorted(
                i for i in range(normal) if i not in record.locations
            )
            if not missing:
                continue
            if len(record.locations) < floor:
                raise SyncError(
                    f"{self.device}: brownout floor violated for "
                    f"{record.segment_id}: {len(record.locations)}/"
                    f"{record.n} blocks placed, floor is {floor}"
                )
            record.debt = missing
            if METRICS.enabled:
                METRICS.inc(
                    "debt_recorded", len(missing), device=self.device
                )
            if TELEMETRY.enabled:
                TELEMETRY.debt(
                    self.sim.now, record.segment_id, len(missing)
                )
            if TRACE.enabled:
                TRACE.event(
                    "brownout_commit", t=self.sim.now, track=self.device,
                    seg=record.segment_id[:12], owed=len(missing),
                )

    def _build_local_image(
        self, local: SyncFolderImage, report: SyncReport
    ) -> Dict[str, list]:
        """Apply ChangedFileList to ``local``; plan block uploads."""
        uploads: List[FileUpload] = []
        new_records: List[SegmentRecord] = []
        upserts: List[FileSnapshot] = []
        deletes: List[str] = []
        for path, kind in sorted(self._pending_changes.items()):
            if kind is ChangeKind.DELETE:
                if path in local.files:
                    local.delete_file(path)
                    deletes.append(path)
                    report.deleted_files.append(path)
                continue
            try:
                content = self.fs.read_file(path)
            except FileNotFoundError:
                continue  # edited then deleted before we synced
            # Zero-copy ingest: segment views feed the encoder directly,
            # so planning uploads never duplicates the file content.
            segments = self.pipeline.ingest_file(content)
            pending_upload = []
            for segment in segments:
                existing = local.segments.get(segment.segment_id)
                if (
                    existing is not None
                    and existing.locations
                    and existing.refcount > 0
                ):
                    # Deduplicated: content already lives in the clouds.
                    # The refcount guard matters: a record nothing
                    # references is garbage whose blocks any committer
                    # may already have reaped, so its locations cannot
                    # be trusted — re-referencing identical content must
                    # re-upload, not resurrect the stale placement.
                    continue
                if existing is None:
                    record = self.pipeline.make_record(segment)
                    local.add_segment(record)
                else:
                    record = existing
                    record.locations.clear()
                    record.block_hashes.clear()
                pending_upload.append((record, segment.data))
            snapshot = FileSnapshot(
                path=path,
                timestamp=self.sim.now,
                size=len(content),
                segment_ids=[s.segment_id for s in segments],
                device=self.device,
            )
            local.upsert_file(snapshot)
            if pending_upload:
                uploads.append(FileUpload(path=path, segments=pending_upload))
                new_records.extend(record for record, _ in pending_upload)
            upserts.append(snapshot)
            report.uploaded_files.append(path)
        return {
            "uploads": uploads,
            "new_records": new_records,
            "upserts": upserts,
            "deletes": deletes,
        }

    # -- cloud-update path (lines 15-19 of Algorithm 1) ---------------------

    def _check_cloud_update(self):
        """Poll version files; returns the newest stamp if it is news."""
        outcomes = yield from gather_safe(
            self.sim,
            [conn.download(self._version_path) for conn in self.connections],
        )
        best: Optional[VersionStamp] = None
        poll: Dict[str, Optional[int]] = {}
        for conn, (ok, blob) in zip(self.connections, outcomes):
            poll[conn.cloud_id] = None
            if not ok:
                continue
            try:
                stamp = deserialize_version(blob)
            except Exception:
                continue
            self.metadata_bytes += len(blob)
            poll[conn.cloud_id] = stamp.counter
            if best is None or stamp.counter > best.counter:
                best = stamp
        self._poll_counters = poll
        if best is None:
            return None
        # Commit counters strictly increase under the quorum lock, so a
        # higher counter than our last-synced image is exactly "news".
        if best.counter > self.image.version.counter:
            return best
        return None

    def _apply_cloud_only_update(self, report: SyncReport,
                                 remote: VersionStamp):
        cloud_image = yield from self._fetch_metadata(expect=remote.counter)
        previous = self.image
        self.image = cloud_image
        self._known_remote = VersionStamp(
            cloud_image.version.counter, cloud_image.version.device
        )
        yield from self._materialize_diff(previous, cloud_image, report)

    # -- metadata transport -------------------------------------------------

    def _fetch_metadata(self, expect: Optional[int] = None):
        """Download base + delta from a *fresh* reachable cloud.

        ``expect`` is the version counter the caller just observed in
        the version-file poll.  A reachable cloud can still be stale —
        it may have missed the last commit entirely, or missed a fold
        (old base) while receiving later delta appends (a *corrupt
        pair*, detected via the :func:`op_base_version` marker).
        Adopting such a replica would silently drop committed
        operations, so stale and corrupt clouds are skipped; if no cloud
        reconstructs at least ``expect``, the round fails with
        :class:`SyncError` and retries later rather than regressing.
        """
        span = (
            TRACE.begin(
                "metadata_fetch", t=self.sim.now, track=self.device,
                expect=expect,
            )
            if TRACE.enabled
            else None
        )
        last_error: Optional[object] = None
        for conn in self.connections:
            if self._budget is not None and self._budget.expired:
                last_error = "round deadline budget exhausted"
                break
            if self.degrade is not None and not self.degrade.admits(
                conn.cloud_id, self.sim.now
            ):
                continue  # breaker open: don't burn a retry budget here
            try:
                base_blob = yield from self.retry.run(
                    self.sim,
                    lambda c=conn: c.download(self._base_path),
                    rng=self.rng,
                    budget=self._budget,
                )
            except CloudError as exc:
                last_error = exc
                if TRACE.enabled:
                    TRACE.event(
                        "metadata_skip", t=self.sim.now,
                        track=conn.cloud_id, reason=type(exc).__name__,
                    )
                continue
            image = deserialize_image(base_blob, self.config.metadata_key)
            self.metadata_bytes += len(base_blob)
            try:
                delta_blob = yield from self.retry.run(
                    self.sim,
                    lambda c=conn: c.download(self._delta_path),
                    rng=self.rng,
                    budget=self._budget,
                )
            except NotFoundError:
                delta_blob = None
            except CloudError as exc:
                last_error = exc
                if TRACE.enabled:
                    TRACE.event(
                        "metadata_skip", t=self.sim.now,
                        track=conn.cloud_id, reason=type(exc).__name__,
                    )
                continue
            if delta_blob:
                self.metadata_bytes += len(delta_blob)
                delta = DeltaLog.from_bytes(
                    delta_blob, self.config.metadata_key
                )
                marker = delta.base_marker()
                if marker >= 0 and marker != image.version.counter:
                    last_error = (
                        f"{conn.cloud_id}: base/delta pair mismatch "
                        f"(base v{image.version.counter}, delta extends "
                        f"v{marker})"
                    )
                    if TRACE.enabled:
                        TRACE.event(
                            "metadata_skip", t=self.sim.now,
                            track=conn.cloud_id, reason="corrupt-pair",
                        )
                    if METRICS.enabled:
                        METRICS.inc("metadata_skips", cloud=conn.cloud_id,
                                    reason="corrupt-pair")
                    continue
                delta.apply_to(image)
            if expect is not None and image.version.counter < expect:
                last_error = (
                    f"{conn.cloud_id}: stale metadata "
                    f"(v{image.version.counter} < expected v{expect})"
                )
                if TRACE.enabled:
                    TRACE.event(
                        "metadata_skip", t=self.sim.now,
                        track=conn.cloud_id, reason="stale",
                    )
                if METRICS.enabled:
                    METRICS.inc("metadata_skips", cloud=conn.cloud_id,
                                reason="stale")
                continue
            recompute_refcounts(image)
            if span is not None:
                TRACE.end(span, t=self.sim.now, served_by=conn.cloud_id,
                          version=image.version.counter)
            return image
        if span is not None:
            TRACE.end(span, t=self.sim.now, error="SyncError")
        raise SyncError(f"{self.device}: no cloud served metadata ({last_error})")

    def _seal_round(self, ops: List[dict], counter: int) -> List[dict]:
        """Stamp a round's ops with its version for publication.

        Default mode appends a separate ``set_version`` record.
        Transactional mode wraps the whole round into one
        :func:`op_txn_round` record instead — a reader's replica either
        carries the entire round or none of it, so a crash or lost lock
        mid-publish can never expose a half-applied round.  The round id
        is journaled first: a resumed incarnation can check the cloud
        log for it to learn whether the commit made it out.
        """
        if not self.config.transactional_rounds:
            return ops + [op_set_version(counter, self.device)]
        round_id = f"{self.device}:{counter}"
        self.journal.note_round(round_id)
        return [op_txn_round(round_id, counter, self.device, ops)]

    def _publish_base(self, image: SyncFolderImage):
        """Replicate a fresh base everywhere; reset the delta.

        The fresh delta is not empty: it opens with a base-version
        marker so readers can detect a replica whose base missed this
        fold but whose delta received later appends (see
        :meth:`_fetch_metadata`).
        """
        base_blob = serialize_image(image, self.config.metadata_key)
        empty_delta = DeltaLog(
            [op_base_version(image.version.counter)]
        ).to_bytes(self.config.metadata_key)
        version_blob = serialize_version(image.version)
        yield from self._replicate(
            [
                (self._base_path, base_blob),
                (self._delta_path, empty_delta),
                (self._version_path, version_blob),
            ]
        )

    def _publish_delta(self, image: SyncFolderImage, ops: List[dict]):
        """Append ops to the cloud delta, or fold into a new base at λ.

        ``image`` carries the *new* (already incremented) version, so
        the delta being extended must reconstruct exactly
        ``image.version.counter - 1``.  The donor cloud is chosen from
        the version counters of the poll that ran moments ago under the
        same lock hold (:meth:`_check_cloud_update`): only clouds whose
        version file matched the previous commit are candidates.
        Extending the first merely *reachable* cloud — the old behavior
        — could pick a replica that missed earlier commits and silently
        drop their operations from the log for every future reader.
        When no reachable cloud holds a fresh pair, fall back to
        folding: publishing a full base from our own image is always
        safe and heals stale replicas.
        """
        expected = image.version.counter - 1
        fresh = [
            conn
            for conn in self.connections
            if self._poll_counters.get(conn.cloud_id) == expected
        ]
        existing: Optional[DeltaLog] = None
        base_size = 0
        for conn in fresh:
            try:
                blob = yield from self.retry.run(
                    self.sim,
                    lambda c=conn: c.download(self._delta_path),
                    rng=self.rng,
                )
                candidate = DeltaLog.from_bytes(
                    blob, self.config.metadata_key
                )
            except CloudError:
                continue
            # Defense in depth: the pair must actually reconstruct the
            # previous commit (version files only witness the write).
            reaches = max(
                candidate.latest_version(), candidate.base_marker(), 0
            )
            if expected > 0 and reaches != expected:
                continue
            self.metadata_bytes += len(blob)
            existing = candidate
            try:
                entries = yield from self.retry.run(
                    self.sim,
                    lambda c=conn: c.list_folder(self.config.meta_dir),
                    rng=self.rng,
                )
                for entry in entries:
                    if entry.path == self._base_path:
                        base_size = entry.size
            except CloudError:
                pass  # fold-threshold input only; 0 forces a safe fold
            break
        if existing is None:
            # No reachable cloud holds a fresh base/delta pair: rewrite
            # everything from our authoritative image instead.
            yield from self._publish_base(image)
            return
        existing.extend(ops)
        delta_blob = existing.to_bytes(self.config.metadata_key)
        version_blob = serialize_version(image.version)
        if base_size == 0 or should_merge(
            base_size, len(delta_blob), self.config
        ):
            yield from self._publish_base(image)
            return
        yield from self._replicate(
            [
                (self._delta_path, delta_blob),
                (self._version_path, version_blob),
            ]
        )

    def _replicate(self, payloads: List[Tuple[str, bytes]]):
        """Upload each (path, blob) to every cloud; need a write quorum.

        Individual requests run under the unified :class:`RetryPolicy`:
        transient failures back off (with jitter) and retry — metadata
        files are small, so retries are cheap and the write quorum is
        the real safety net — while an *unavailable* cloud fails fast
        after a single attempt.  Each probe of a down cloud burns the
        full unavailability timeout, so hammering it ``max_retries``
        times back-to-back only multiplied the stall; the quorum
        tolerates the miss and a later round heals the replica.

        With the degradation control plane on, clouds whose breaker is
        open are skipped entirely (their retry budget is not burned);
        if fewer than a quorum of clouds admit traffic the write fails
        fast instead of timing out against known-bad replicas.
        """
        conns = self.connections
        if self.degrade is not None:
            now = self.sim.now
            conns = [
                c for c in self.connections
                if self.degrade.admits(c.cloud_id, now)
            ]
            if len(conns) < self.quorum:
                raise SyncError(
                    f"{self.device}: only {len(conns)}/"
                    f"{len(self.connections)} clouds admit metadata "
                    f"writes (need quorum {self.quorum})"
                )
            for conn in conns:
                self.degrade.note_dispatch(conn.cloud_id, now)

        def upload_all(conn):
            for path, blob in payloads:
                yield from self.retry.run(
                    self.sim,
                    lambda c=conn, p=path, b=blob: c.upload(p, b),
                    rng=self.rng,
                    budget=self._budget,
                )
            return True

        outcomes = yield from gather_safe(
            self.sim, [upload_all(conn) for conn in conns]
        )
        if self.degrade is not None:
            for conn, (ok, _res) in zip(conns, outcomes):
                if ok:
                    self.degrade.on_success(conn.cloud_id, self.sim.now)
                else:
                    # The unified policy already exhausted its attempt
                    # budget on this cloud — conclusive evidence.
                    self.degrade.on_failure(
                        conn.cloud_id, self.sim.now, fatal=True
                    )
        successes = sum(1 for ok, _ in outcomes if ok)
        if successes < self.quorum:
            raise SyncError(
                f"{self.device}: metadata write reached only "
                f"{successes}/{len(self.connections)} clouds"
            )
        self.metadata_bytes += successes * sum(len(b) for _p, b in payloads)

    # -- materializing remote state locally ---------------------------------

    def _materialize_diff(self, previous: SyncFolderImage,
                          current: SyncFolderImage, report: SyncReport):
        changes = diff_images(previous, current)
        to_fetch: List[str] = []
        for path, (kind, snapshot) in sorted(changes.items()):
            if kind == "delete":
                if self.fs.exists(path):
                    self.fs.delete_file(path)
                    report.deleted_files.append(path)
                continue
            if snapshot.device == self.device and self._disk_matches(snapshot):
                # Our own commit, fresh from this folder — already local.
                # The content check matters: a snapshot can carry our
                # device name without matching the disk (a *retained*
                # edit of ours promoted back to current by another
                # device's delete), and skipping on provenance alone
                # would leave this folder diverged from the image.
                continue
            to_fetch.append(path)
        yield from self._materialize(current, to_fetch, report)

    def _disk_matches(self, snapshot: FileSnapshot) -> bool:
        """Is the folder's copy of this path the snapshot's content?"""
        try:
            content = self.fs.read_file(snapshot.path)
        except FileNotFoundError:
            return False
        if len(content) != snapshot.size:
            return False
        segments = self.pipeline.ingest_file(content)
        return [s.segment_id for s in segments] == snapshot.segment_ids

    def _materialize(self, image: SyncFolderImage, paths: List[str],
                     report: SyncReport):
        wants = []
        for path in paths:
            entry = image.files.get(path)
            if entry is None:
                self._pending_fetch.discard(path)
                continue
            records = [
                image.segments[sid]
                for sid in entry.current.segment_ids
                if sid in image.segments
            ]
            if len(records) != len(entry.current.segment_ids):
                continue
            wants.append(FileDownload(path=path, segments=records))
        if not wants:
            return
        span = None
        batch_ctx = None
        if TRACE.enabled:
            sid = TRACE.tracer.next_id()
            attrs = _ctx_attrs(self._trace_ctx, sid)
            span = TRACE.begin(
                "download_batch", t=self.sim.now, track=self.device,
                files=len(wants), **attrs,
            )
            batch_ctx = (attrs.get("trace_id", sid), sid)
        scheduler = DownloadScheduler(
            self.sim, self.connections, self.pipeline, self.config,
            estimator=self.estimator, retry_policy=self.retry,
            rng=self.rng, trace_ctx=batch_ctx, tenant=self.device,
            degrade=self.degrade, budget=self._budget,
        )
        batch = yield from scheduler.run_batch(wants)
        if self.degrade is not None:
            self.hedges_fired += scheduler.hedges_fired
            self.hedged_bytes += scheduler.hedged_bytes
        if span is not None:
            TRACE.end(
                span, t=self.sim.now,
                failed_requests=batch.failed_requests,
            )
        report.download_report = batch
        for file_report in batch.files:
            if file_report.content is None:
                # Not enough clouds right now; retry on a later sync.
                self._pending_fetch.add(file_report.path)
                continue
            self._pending_fetch.discard(file_report.path)
            self.fs.write_file(
                file_report.path, file_report.content, mtime=self.sim.now
            )
            self.block_bytes += len(file_report.content)
            report.downloaded_files.append(file_report.path)
        # Swallow the watcher events our own writes just generated.
        self._absorb_own_writes()

    def _handle_conflict_copies(self, conflicts: List[str],
                                image: SyncFolderImage) -> None:
        """Keep the user's losing edit next to the winning cloud copy.

        The copy paths become pending changes whether the copy file is
        new (first conflict on this path) or overwrites an earlier copy
        (repeat conflict) — both must sync to other devices.
        """
        copies = set()
        for path in conflicts:
            if not self.fs.exists(path):
                continue
            local_content = self.fs.read_file(path)
            copy_path = f"{path}.conflict-{self.device}"
            self.fs.write_file(copy_path, local_content, mtime=self.sim.now)
            copies.add(copy_path)
        for change in self.watcher.poll():
            if change.path in copies:
                self._pending_changes[change.path] = change.kind

    def _absorb_own_writes(self, keep_new_files: bool = False) -> None:
        for change in self.watcher.poll():
            if keep_new_files and change.kind is ChangeKind.ADD:
                self._pending_changes[change.path] = change.kind

    # -- device heartbeats & fully-synced GC ---------------------------------

    def _publish_heartbeat(self):
        """Advertise the metadata version this device has applied.

        Heartbeat files let any device tell when a version has reached
        *every* device — the paper's trigger for reclaiming
        over-provisioned blocks (§6.2).  Best effort: a stale heartbeat
        only delays garbage collection, never correctness.
        """
        import json as _json

        blob = _json.dumps(
            {"device": self.device, "applied": self.image.version.counter}
        ).encode()
        yield from gather_safe(
            self.sim,
            [conn.upload(self._heartbeat_path, blob) for conn in self.connections],
        )

    def fleet_applied_versions(self):
        """Read every device's heartbeat; returns {device: version}."""
        import json as _json

        listings = yield from gather_safe(
            self.sim,
            [conn.list_folder(self.config.meta_dir) for conn in self.connections],
        )
        names = set()
        for ok, entries in listings:
            if not ok:
                continue
            for entry in entries:
                if entry.name.startswith("device_"):
                    names.add(entry.name)
        versions = {}
        for name in sorted(names):
            for conn in self.connections:
                try:
                    blob = yield from conn.download(
                        posixpath.join(self.config.meta_dir, name)
                    )
                except CloudError:
                    continue
                try:
                    payload = _json.loads(blob.decode())
                    versions[payload["device"]] = payload["applied"]
                except Exception:
                    pass
                break
        return versions

    def gc_if_fully_synced(self):
        """Reclaim over-provisioned blocks once every known device has
        applied the current metadata version (paper §6.2).

        Returns True when the cleanup ran, False when some device still
        lags (or no heartbeats are visible yet).
        """
        versions = yield from self.fleet_applied_versions()
        if not versions:
            return False
        current = self.image.version.counter
        if any(applied < current for applied in versions.values()):
            return False
        yield from self.gc_over_provisioned()
        return True

    # -- conflict resolution ----------------------------------------------

    def conflicted_paths(self) -> List[str]:
        """Paths whose entries retain unresolved conflict snapshots."""
        return sorted(
            path for path, entry in self.image.files.items()
            if entry.conflicts
        )

    def resolve_conflict(self, path: str, keep: str = "cloud"):
        """Resolve a retained conflict and commit the decision.

        ``keep="cloud"`` drops the retained local snapshot (the winning
        cloud version stays); ``keep="local"`` promotes the retained
        snapshot back to current — its content is fetched and written to
        the local path before the losing version's data is released.
        """
        if keep not in ("cloud", "local"):
            raise ValueError(f"keep must be 'cloud' or 'local', not {keep!r}")
        entry = self.image.files.get(path)
        if entry is None or not entry.conflicts:
            raise KeyError(f"no unresolved conflict at {path}")
        yield from self.lock.acquire()
        try:
            remote = yield from self._check_cloud_update()
            image = (
                (yield from self._fetch_metadata(expect=remote.counter))
                if remote is not None else self.image.copy()
            )
            entry = image.files.get(path)
            if entry is None or not entry.conflicts:
                # Someone else resolved it meanwhile; nothing to do.
                self.image = image
                return
            keep_index = len(entry.conflicts) - 1 if keep == "local" else None
            if keep == "local":
                # Materialize the promoted content before committing.
                snapshot = entry.conflicts[keep_index]
                records = [
                    image.segments[sid] for sid in snapshot.segment_ids
                    if sid in image.segments
                ]
                scheduler = DownloadScheduler(
                    self.sim, self.connections, self.pipeline, self.config,
                    estimator=self.estimator, retry_policy=self.retry,
                    rng=self.rng, tenant=self.device,
                    degrade=self.degrade,
                )
                batch = yield from scheduler.run_batch(
                    [FileDownload(path=path, segments=records)]
                )
                content = batch.report_for(path).content
                if content is None:
                    raise SyncError(
                        f"{self.device}: cannot fetch conflict copy of {path}"
                    )
                self.fs.write_file(path, content, mtime=self.sim.now)
                self._absorb_own_writes()
            image.resolve_conflict(path, keep_index)
            image.version = VersionStamp(
                image.version.counter + 1, self.device
            )
            ops = self._seal_round(
                [op_resolve_conflict(path, keep_index)],
                image.version.counter,
            )
            yield from self._publish_delta(image, ops)
            self.image = image
        finally:
            yield from self.lock.release()
        self._collect_garbage()

    # -- crash modelling & journal sweep --------------------------------------

    def crash(self) -> None:
        """Model abrupt device death (power loss) for chaos tests.

        Hard-stops the transfer workers of the round in flight and the
        quorum-lock refresher — none of their cleanup runs, so cloud
        state is left exactly as the dead process left it (landed
        blocks, possibly stale lock files).  The caller also kills the
        sync process itself (see ``FaultInjector.client_crash``); the
        journal is the only state the device carries into its next
        incarnation.
        """
        if self._active_upload is not None:
            self._active_upload.kill_workers()
            self._active_upload = None
        refresher = self.lock._refresher
        if refresher is not None and refresher.is_alive:
            refresher.kill()
        self.lock._refresher = None
        self.lock.held = False

    def _journal_sweep(self):
        """Delete journaled blocks the committed image does not
        reference, then retire the journal (the round is accounted
        for — every acknowledged block is either in the image or
        gone)."""
        orphans = self.journal.orphan_blocks(self.image)
        deletions = []
        swept = 0
        for segment_id, placed in sorted(orphans.items()):
            for index, cloud_id in sorted(placed.items()):
                conn = self._connection(cloud_id)
                if conn is None:
                    continue
                path = posixpath.join(
                    self.config.blocks_dir, f"{segment_id}.{index}"
                )
                deletions.append(conn.delete(path))
                swept += 1
        if deletions:
            yield from gather_safe(self.sim, deletions)
        if swept:
            if METRICS.enabled:
                METRICS.inc("orphans_swept", swept, device=self.device)
            if TRACE.enabled:
                TRACE.event("journal_sweep", t=self.sim.now,
                            track=self.device, orphans=swept)
        self.journal.commit()

    # -- garbage collection --------------------------------------------------

    def _collect_garbage(self) -> None:
        """Delete cloud blocks of unreferenced segments (best effort)."""
        garbage = self.image.garbage_segments()
        if not garbage:
            return
        deletions = []
        for record in garbage:
            for index, cloud_id in record.locations.items():
                conn = self._connection(cloud_id)
                if conn is not None:
                    deletions.append(
                        conn.delete(self.pipeline.block_path(record, index))
                    )
            self.image.drop_segment(record.segment_id)
        if deletions:
            self.sim.process(gather_safe(self.sim, deletions))

    def gc_over_provisioned(self):
        """Reclaim over-provisioned blocks (paper §6.2).

        For every referenced segment, keep each cloud's fair share and
        delete the rest, updating the metadata image locally.  Run this
        once a file is known to be synced to all devices.
        """
        share = fair_share(self.config.k_blocks, self.config.k_reliability)
        deletions = []
        for record in self.image.segments.values():
            if record.refcount <= 0:
                continue
            for cloud_id in record.clouds_holding():
                extra = record.blocks_on(cloud_id)[share:]
                for index in extra:
                    conn = self._connection(cloud_id)
                    if conn is not None:
                        deletions.append(
                            conn.delete(self.pipeline.block_path(record, index))
                        )
                    del record.locations[index]
        if deletions:
            yield from gather_safe(self.sim, deletions)

    # -- cloud membership -----------------------------------------------------

    def remove_cloud(self, cloud_id: str):
        """Drop a CCS: redistribute its fair share, then forget it.

        Delegates to the durability subsystem's decommission plan
        (``wipe=True``: the departing provider is still reachable, so
        its blocks, metadata replica and lock directory are scrubbed on
        the way out).  For a provider that is *gone* — permanently
        unreachable, data lost — use ``Scrubber.decommission`` with
        ``wipe=False`` instead.
        """
        from .scrub import Scrubber

        yield from Scrubber(self).decommission(cloud_id, wipe=True)

    def add_cloud(self, connection: CloudAPI):
        """Enroll a new CCS: it adopts its fair share from loaded clouds."""
        from .scrub import Scrubber

        yield from Scrubber(self).integrate(connection)

    def _commit_rebalanced_image(self):
        """Publish the rebalanced block map so other devices see it.

        Run add/remove on a quiescent folder: the rebalance commits the
        *current* image wholesale rather than merging concurrent edits.
        """
        yield from self.lock.acquire()
        try:
            self.image.version = VersionStamp(
                self.image.version.counter + 1, self.device
            )
            yield from self._publish_base(self.image)
            self._known_remote = VersionStamp(
                self.image.version.counter, self.device
            )
        finally:
            yield from self.lock.release()

    def _fetch_blocks(self, record: SegmentRecord, count: int,
                      connections: Sequence[CloudAPI],
                      verify: bool = True):
        """Fetch any ``count`` blocks of a segment from given clouds.

        With ``verify`` (the default), a fetched block whose bytes do
        not match the recorded integrity hash counts as unreachable —
        feeding rotten shards into a repair decode would propagate the
        corruption into freshly minted blocks.  Verification is
        batched: fetched blocks queue up and are fingerprinted together
        (one reduction via :func:`block_hash_many`) once enough are in
        hand to possibly satisfy ``count`` — the same blocks are
        downloaded in the same order as immediate per-block hashing,
        only the host-CPU hash work is coalesced.
        """
        by_id = {c.cloud_id: c for c in connections}
        blocks: Dict[int, bytes] = {}
        pending: List[tuple] = []  # (index, cloud_id, block, expected, t)

        def flush_verify():
            digests = block_hash_many([entry[2] for entry in pending])
            for (index, cloud_id, block, expected, t), digest in zip(
                pending, digests
            ):
                if digest != expected:
                    if METRICS.enabled:
                        METRICS.inc("corrupt_detected", cloud=cloud_id)
                    if TRACE.enabled:
                        # t is the sim time the rotten block finished
                        # downloading — detection is host CPU work.
                        TRACE.event(
                            "corrupt_block", t=t, track=cloud_id,
                            seg=record.segment_id[:12], block=index,
                        )
                    continue
                blocks[index] = block
            pending.clear()

        for index, cloud_id in sorted(record.locations.items()):
            if len(blocks) + len(pending) >= count:
                flush_verify()
                if len(blocks) >= count:
                    break
            conn = by_id.get(cloud_id)
            if conn is None:
                continue
            try:
                block = yield from conn.download(
                    self.pipeline.block_path(record, index)
                )
            except CloudError:
                continue
            expected = (
                record.block_hashes.get(index)
                if verify and getattr(conn, "retains_content", True)
                else None
            )
            if expected is not None:
                pending.append(
                    (index, cloud_id, block, expected, self.sim.now)
                )
            else:
                blocks[index] = block
        flush_verify()
        if len(blocks) < count:
            raise SyncError(
                f"{self.device}: only {len(blocks)}/{count} blocks of "
                f"{record.segment_id} reachable"
            )
        return blocks

    def _connection(self, cloud_id: str) -> Optional[CloudAPI]:
        for conn in self.connections:
            if conn.cloud_id == cloud_id:
                return conn
        return None

    # -- metrics ---------------------------------------------------------

    def traffic_totals(self) -> Dict[str, int]:
        """Aggregate client traffic for the overhead experiments."""
        totals = {
            "payload_up": 0,
            "payload_down": 0,
            "overhead": 0,
            "requests": 0,
            "failed_requests": 0,
        }
        for conn in self.connections:
            meter = getattr(conn, "traffic", None)
            if meter is None:
                continue
            totals["payload_up"] += meter.payload_up
            totals["payload_down"] += meter.payload_down
            totals["overhead"] += meter.overhead
            totals["requests"] += meter.requests
            totals["failed_requests"] += meter.failed_requests
        totals["metadata_bytes"] = self.metadata_bytes
        totals["block_bytes"] = self.block_bytes
        return totals
