"""Unified retry/backoff policy for cloud operations.

Every failure path in UniDrive used to roll its own loop: ``_replicate``
retried ``CloudUnavailableError`` back-to-back (burning the 10-virtual-
second unavailability probe each time), the metadata fetch gave up on a
cloud after a single transient blip, the quorum lock had a bespoke
backoff formula, and the schedulers re-dispatched failed blocks with no
delay at all.  This module centralizes the policy those call sites now
share:

* **Error classification.**  Each :mod:`repro.cloud.errors` class
  carries a ``retry_action`` attribute — ``CloudUnavailableError`` fails
  fast (the outage outlasts any backoff, and every probe wastes the
  unavailability timeout), ``QuotaExceededError`` / ``NotFoundError`` /
  ``ConflictError`` are deterministic and never retried, and
  ``RequestFailedError`` (plus any other transient ``CloudError``)
  retries.
* **Jittered exponential backoff.**  Delays grow as
  ``base * multiplier ** attempt``, capped at ``max_delay``, then jitter
  down uniformly into ``[delay * (1 - jitter), delay]`` so contending
  devices decorrelate.  Passing ``rng=None`` yields the deterministic
  (un-jittered) schedule, which the data-plane schedulers use to stay
  reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple, Type

from ..cloud import CloudError
from ..obs import METRICS, TELEMETRY, TRACE

__all__ = ["RetryPolicy", "RETRY", "FAIL_FAST", "GIVE_UP"]

#: Classification verdicts (the values double as log-friendly strings).
RETRY = "retry"
FAIL_FAST = "fail-fast"
GIVE_UP = "give-up"

_ACTIONS = (RETRY, FAIL_FAST, GIVE_UP)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, to retry a cloud operation."""

    #: Total attempt budget for retryable errors (first try included).
    max_attempts: int = 4
    #: First backoff delay, virtual seconds.
    base_delay: float = 0.5
    #: Backoff ceiling, virtual seconds.
    max_delay: float = 30.0
    #: Exponential growth factor between consecutive backoffs.
    multiplier: float = 2.0
    #: Jitter fraction: delays land uniformly in [d * (1 - jitter), d].
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The deployment-wide data/metadata policy (knobs in config)."""
        return cls(
            max_attempts=config.max_retries,
            base_delay=config.retry_base_delay,
            max_delay=config.retry_max_delay,
            multiplier=config.retry_multiplier,
            jitter=config.retry_jitter,
        )

    # -- classification ----------------------------------------------------

    @staticmethod
    def classify(exc: BaseException) -> str:
        """Map an exception to one of RETRY / FAIL_FAST / GIVE_UP.

        Cloud errors carry their own ``retry_action``; anything else
        (programming errors, simulator interrupts) is never retried.
        """
        if isinstance(exc, CloudError):
            action = getattr(exc, "retry_action", RETRY)
            return action if action in _ACTIONS else RETRY
        return GIVE_UP

    # -- backoff schedule --------------------------------------------------

    def backoff(self, attempt: int, rng=None) -> float:
        """Delay before retry number ``attempt`` (0-based), jittered."""
        if attempt < 0:
            attempt = 0
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if rng is not None and self.jitter > 0 and delay > 0:
            delay = float(rng.uniform(delay * (1.0 - self.jitter), delay))
        return delay

    # -- the retry loop ----------------------------------------------------

    def run(
        self,
        sim,
        operation: Callable[[], Generator],
        rng=None,
        on_failure: Optional[Callable[[BaseException, int], None]] = None,
        budget=None,
    ) -> Generator:
        """Drive ``operation`` to completion under this policy.

        ``operation`` is a zero-argument callable returning a *fresh*
        generator per call (generators are single-shot, so the retry
        loop needs a factory, not a generator).  Fail-fast and give-up
        errors propagate after the first attempt; retryable errors are
        re-attempted up to ``max_attempts`` times with jittered
        exponential backoff in virtual time.  ``on_failure(exc, attempt)``
        is invoked before each backoff — schedulers use it to feed the
        throughput estimator.  ``budget`` (a
        :class:`~repro.core.degrade.DeadlineBudget`) stops further
        retries once the round's deadline passes: the current error
        propagates instead of backing off into a deadline the caller
        has already blown.
        """
        attempt = 1
        while True:
            try:
                value = yield from operation()
            except Exception as exc:
                action = self.classify(exc)
                exhausted = attempt >= self.max_attempts or (
                    budget is not None and budget.expired
                )
                if action is not RETRY or exhausted:
                    outcome = action if action is not RETRY else "exhausted"
                    if METRICS.enabled:
                        METRICS.inc(
                            "retry_outcome",
                            outcome=outcome,
                            error=type(exc).__name__,
                        )
                    if TELEMETRY.enabled:
                        TELEMETRY.retry(
                            sim.now, outcome,
                            cloud=getattr(exc, "cloud_id", None),
                        )
                    raise
                if METRICS.enabled:
                    METRICS.inc(
                        "retry_outcome",
                        outcome=RETRY,
                        error=type(exc).__name__,
                    )
                if TELEMETRY.enabled:
                    TELEMETRY.retry(
                        sim.now, RETRY,
                        cloud=getattr(exc, "cloud_id", None),
                    )
                if on_failure is not None:
                    on_failure(exc, attempt)
                delay = self.backoff(attempt - 1, rng)
                if delay > 0:
                    span = (
                        TRACE.begin(
                            "retry_wait",
                            t=sim.now,
                            track="retry",
                            attempt=attempt,
                            error=type(exc).__name__,
                        )
                        if TRACE.enabled
                        else None
                    )
                    yield sim.timeout(delay)
                    if span is not None:
                        TRACE.end(span, t=sim.now)
                attempt += 1
                continue
            return value


# Typing helper for call sites that keep tuples of error classes around.
ErrorClasses = Tuple[Type[BaseException], ...]
