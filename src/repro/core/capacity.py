"""Storage-capacity accounting (paper §1).

The paper's introduction argues UniDrive uses existing quotas more
effectively than replication: with 100 GB on each of three vendors and
a requirement to tolerate one vendor outage, UniDrive offers 200 GB of
user-visible space where a replication scheme offers at most 150 GB.

These functions generalize that arithmetic.  UniDrive's steady-state
footprint (after over-provisioned blocks are reclaimed) stores
``fair_share = ceil(k / K_r)`` blocks of size ``segment/k`` on *every*
cloud, so each byte of user data costs ``fair_share / k`` bytes per
cloud; the binding constraint is the smallest quota.
"""

from __future__ import annotations

from typing import Sequence

from .placement import fair_share, max_blocks_per_cloud

__all__ = [
    "unidrive_capacity",
    "replication_capacity",
    "storage_expansion",
    "over_provisioned_expansion",
]


def _validate(quotas: Sequence[int]) -> None:
    if not quotas:
        raise ValueError("need at least one quota")
    if any(q < 0 for q in quotas):
        raise ValueError(f"quotas must be non-negative: {list(quotas)}")


def storage_expansion(k_blocks: int, k_reliability: int,
                      n_clouds: int) -> float:
    """Steady-state stored-bytes per user-byte (fair shares only)."""
    share = fair_share(k_blocks, k_reliability)
    return share * n_clouds / k_blocks


def over_provisioned_expansion(k_blocks: int, k_security: int,
                               n_clouds: int) -> float:
    """Worst-case transient expansion while over-provisioned blocks
    still exist (before the post-sync cleanup reclaims them)."""
    cap = max_blocks_per_cloud(k_blocks, k_security)
    return cap * n_clouds / k_blocks


def unidrive_capacity(quotas: Sequence[int], k_blocks: int,
                      k_reliability: int) -> float:
    """User-visible capacity of a UniDrive deployment.

    Every cloud stores ``fair_share/k`` of each byte, so the smallest
    quota binds: ``capacity = min(quota) * k / fair_share``.

    >>> unidrive_capacity([100, 100, 100], k_blocks=2, k_reliability=2)
    200.0
    """
    _validate(quotas)
    share = fair_share(k_blocks, k_reliability)
    return min(quotas) * k_blocks / share


def replication_capacity(quotas: Sequence[int],
                         tolerate_failures: int) -> float:
    """Best-case capacity of whole-file replication with the same goal.

    Tolerating ``f`` vendor outages requires ``f + 1`` replicas of every
    file; with free placement the best achievable capacity is bounded by
    ``total_quota / (f + 1)`` (and by what fits: replicas of one file
    must land on distinct clouds).

    >>> replication_capacity([100, 100, 100], tolerate_failures=1)
    150.0
    """
    _validate(quotas)
    copies = tolerate_failures + 1
    if copies < 1 or copies > len(quotas):
        raise ValueError(
            f"cannot place {copies} replicas on {len(quotas)} clouds"
        )
    # C user-bytes are feasible iff C * copies replica-bytes fit with
    # each byte's replicas on distinct clouds — i.e. iff
    # ``copies * C <= sum(min(quota_i, C))`` (no cloud holds more than
    # one replica of a byte).  The feasibility margin is monotone in C,
    # so bisect.
    low, high = 0.0, sum(quotas) / copies
    for _ in range(60):
        mid = (low + high) / 2
        if copies * mid <= sum(min(q, mid) for q in quotas):
            low = mid
        else:
            high = mid
    return low
