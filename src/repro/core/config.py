"""UniDrive configuration (the knobs from paper §5-§7).

Defaults follow the paper's evaluation setup (§7.1): N = 5 clouds,
K_r = 3, K_s = 2, segment size θ = 4 MB, k = 3 blocks per segment
(≈1.3 MB blocks — the sweet spot between throughput and failure rate
from §3.2), and up to 5 connections per cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["UniDriveConfig"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class UniDriveConfig:
    """All tunable parameters of a UniDrive deployment."""

    #: Reliability requirement K_r: any K_r of N clouds suffice to read.
    k_reliability: int = 3
    #: Security requirement K_s: fewer than K_s clouds learn nothing.
    k_security: int = 2
    #: Content-defined segmentation target θ, bytes.
    theta: int = 4 * _MB
    #: Data blocks per segment, k.
    k_blocks: int = 3
    #: Maximum concurrent connections per cloud.
    connections_per_cloud: int = 5
    #: Cloud-update polling interval τ, seconds.
    check_interval: float = 30.0
    #: Lock staleness threshold ΔT, seconds (paper suggests 120 s).
    lock_stale_seconds: float = 120.0
    #: Virtual seconds to keep retrying lock acquisition before giving up.
    #: Must exceed ΔT so a crashed holder's lock can be broken and taken.
    lock_acquire_timeout: float = 900.0
    #: Random backoff window after a failed lock attempt, seconds.
    lock_backoff_max: float = 8.0
    #: Delta file merges into the base when it exceeds this fraction of
    #: the base size...
    delta_merge_ratio: float = 0.25
    #: ...or this absolute size, whichever is smaller (λ, paper §5.2).
    delta_merge_bytes: int = 10 * 1024
    #: DES key protecting metadata at rest in the clouds.
    metadata_key: bytes = b"UniDrive"
    #: Per-request retry budget for data-plane transfers.
    max_retries: int = 4
    #: First retry backoff delay, virtual seconds (doubles per attempt).
    retry_base_delay: float = 0.5
    #: Retry backoff ceiling, virtual seconds.
    retry_max_delay: float = 30.0
    #: Exponential growth factor between consecutive retry backoffs.
    retry_multiplier: float = 2.0
    #: Jitter fraction of each backoff (delays land in [d*(1-j), d]).
    retry_jitter: float = 0.5
    #: Consecutive failures after which a cloud is considered down for
    #: the remainder of a transfer job.
    cloud_failure_threshold: int = 3
    #: Conflict-resolution policy for divergent concurrent edits:
    #: "retain-both" (paper default), "last-writer-wins" (timestamp
    #: then device-name tiebreak), or "per-path" (client-supplied
    #: resolver callback — see core.merge.MergePolicy).
    conflict_policy: str = "retain-both"
    #: All-or-nothing sync rounds: publish each round's delta ops under
    #: a single transactional commit marker so a crash or lost lock
    #: mid-round leaves either the whole round visible or none of it.
    transactional_rounds: bool = False
    #: Master switch for the degradation control plane (circuit
    #: breakers, deadline budgets, hedged fetches, brownout writes).
    #: Off by default: the disabled data path is byte-identical to the
    #: pre-degradation behaviour (the deterministic goldens depend on
    #: this).
    degrade_enabled: bool = False
    #: Consecutive transient failures that open a cloud's breaker
    #: (fatal classifications open it immediately).
    breaker_failure_threshold: int = 3
    #: Virtual seconds an open breaker waits before admitting
    #: half-open probes.
    breaker_cooldown_seconds: float = 30.0
    #: Maximum probe dispatches per half-open episode.
    breaker_probe_quota: int = 1
    #: Probe successes required to close a half-open breaker.
    breaker_close_after: int = 1
    #: Per-sync-round deadline budget, virtual seconds (0 = unbounded).
    #: Propagated through metadata fetch, upload/download batches, and
    #: lock acquisition so a round aborts cleanly instead of stacking
    #: worst-case timeouts.
    round_deadline_seconds: float = 0.0
    #: Hedged block fetches: a duplicate request races to the
    #: next-healthiest cloud once an in-flight fetch exceeds this
    #: multiple of its estimator-predicted duration.
    hedge_latency_factor: float = 3.0
    #: Cap on hedge traffic as a fraction of the batch's expected
    #: fetch bytes (0 disables hedging even with degrade_enabled).
    hedge_bytes_fraction: float = 0.1
    #: Brownout floor: commits during a brownout must place at least
    #: ``k + brownout_floor`` blocks of every segment; the indices left
    #: unplaced are recorded as redundancy debt for scrub to repay.
    brownout_floor: int = 0
    #: Cloud-side directory layout.
    blocks_dir: str = "/unidrive/blocks"
    meta_dir: str = "/unidrive/meta"
    lock_dir: str = "/unidrive/locks"
    extra: dict = field(default_factory=dict)

    def validate(self, n_clouds: int) -> None:
        """Check parameter consistency for a deployment of N clouds.

        Enforces 1 <= K_s <= K_r <= N (paper §6.1) plus basic sanity,
        and that the security cap leaves room for the reliability
        placement (fair share must not exceed the per-cloud maximum).
        """
        from .placement import fair_share, max_blocks_per_cloud

        if n_clouds < 1:
            raise ValueError(f"need at least one cloud, got {n_clouds}")
        if not 1 <= self.k_security <= self.k_reliability <= n_clouds:
            raise ValueError(
                f"require 1 <= K_s <= K_r <= N, got K_s={self.k_security} "
                f"K_r={self.k_reliability} N={n_clouds}"
            )
        if self.k_blocks < 1:
            raise ValueError(f"k must be >= 1, got {self.k_blocks}")
        if self.connections_per_cloud < 1:
            raise ValueError("connections_per_cloud must be >= 1")
        if self.conflict_policy not in (
            "retain-both", "last-writer-wins", "per-path"
        ):
            raise ValueError(
                f"unknown conflict_policy {self.conflict_policy!r}"
            )
        share = fair_share(self.k_blocks, self.k_reliability)
        cap = max_blocks_per_cloud(self.k_blocks, self.k_security)
        if share > cap:
            raise ValueError(
                f"reliability needs {share} blocks/cloud but security "
                f"allows at most {cap}; relax K_s or K_r"
            )
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be >= 1")
        if self.breaker_cooldown_seconds <= 0:
            raise ValueError("breaker_cooldown_seconds must be > 0")
        if self.breaker_probe_quota < 1:
            raise ValueError("breaker_probe_quota must be >= 1")
        if not 1 <= self.breaker_close_after <= self.breaker_probe_quota:
            raise ValueError(
                "require 1 <= breaker_close_after <= breaker_probe_quota"
            )
        if self.round_deadline_seconds < 0:
            raise ValueError("round_deadline_seconds must be >= 0")
        if self.hedge_latency_factor < 1.0:
            raise ValueError("hedge_latency_factor must be >= 1")
        if not 0.0 <= self.hedge_bytes_fraction <= 1.0:
            raise ValueError("hedge_bytes_fraction must be in [0, 1]")
        if self.brownout_floor < 0:
            raise ValueError("brownout_floor must be >= 0")
        # A brownout commit may never demand more blocks than a segment
        # has: k + floor must stay within the normal placement's
        # n = fair_share * N total blocks.
        from .placement import normal_block_count

        surplus = normal_block_count(
            self.k_blocks, self.k_reliability, n_clouds
        ) - self.k_blocks
        if self.brownout_floor > surplus:
            raise ValueError(
                f"brownout_floor {self.brownout_floor} exceeds the "
                f"redundancy surplus n - k = {surplus}"
            )
