"""Durability & self-healing: integrity scrubbing and repair (paper §6.2).

Erasure coding makes data *survivable*; it does not make it *durable*
by itself.  Blocks rot silently, providers lose objects, and a cloud
can disappear for good — none of which the sync protocol notices until
a download fails.  The :class:`Scrubber` closes that gap with an
explicit audit → repair cycle driven entirely by the committed
metadata image:

* :meth:`audit` lists every cloud's block directory and compares it
  against the image — blocks the metadata references but the cloud
  does not hold are **missing**; stored blocks whose size (shallow) or
  content hash (deep) disagrees with the record are **corrupt**; stored
  blocks no record references are **orphaned**;
* :meth:`repair` deletes the orphans and, for every damaged segment,
  reconstructs the original content from any ``k`` surviving verified
  blocks, re-encodes exactly the damaged indices (blocks are
  deterministic functions of ``(content, index)``), and re-uploads them
  to the placement the metadata already records — no metadata commit
  is needed, the clouds are simply healed back to the image;
* :meth:`decommission` / :meth:`integrate` handle full membership
  changes — a cloud leaving (gracefully, or *lost* with its data) and
  a cloud joining — by rebalancing every segment's placement and
  committing the new image.

Scrubbing assumes a quiescent folder (no sync round in flight), like
the membership operations: a concurrent uploader's not-yet-committed
blocks would look orphaned.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cloud import CloudAPI, CloudError, NotFoundError
from ..obs import METRICS, TELEMETRY, TRACE
from .lock import QuorumLock
from .pipeline import block_hash, block_hash_many
from .placement import (
    max_blocks_per_cloud,
    rebalance_on_add,
    rebalance_on_remove,
)
from .util import gather_safe

__all__ = ["Scrubber", "ScrubReport", "RepairReport"]


@dataclass
class ScrubReport:
    """What one audit pass found, cloud state vs the metadata image."""

    started_at: float
    deep: bool
    finished_at: float = 0.0
    #: (segment_id, block index, cloud_id) the image references but the
    #: cloud does not hold.
    missing: List[Tuple[str, int, str]] = field(default_factory=list)
    #: (segment_id, block index, cloud_id) held but failing the size
    #: check (shallow) or the content-hash check (deep).
    corrupt: List[Tuple[str, int, str]] = field(default_factory=list)
    #: cloud_id -> block-file paths no segment record references.
    orphaned: Dict[str, List[str]] = field(default_factory=dict)
    #: Clouds whose block listing failed; their blocks are *not*
    #: reported missing (absence of evidence).
    unreachable: List[str] = field(default_factory=list)
    segments_checked: int = 0
    blocks_checked: int = 0

    @property
    def damaged_segments(self) -> List[str]:
        """Segments needing repair, in deterministic order."""
        return sorted({sid for sid, _i, _c in self.missing}
                      | {sid for sid, _i, _c in self.corrupt})

    @property
    def orphan_count(self) -> int:
        return sum(len(paths) for paths in self.orphaned.values())

    @property
    def clean(self) -> bool:
        return not (self.missing or self.corrupt or self.orphaned)

    def to_dict(self) -> dict:
        return {
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "deep": self.deep,
            "segments_checked": self.segments_checked,
            "blocks_checked": self.blocks_checked,
            "missing": [list(item) for item in sorted(self.missing)],
            "corrupt": [list(item) for item in sorted(self.corrupt)],
            "orphaned": {
                cloud: sorted(paths)
                for cloud, paths in sorted(self.orphaned.items())
            },
            "unreachable": sorted(self.unreachable),
            "clean": self.clean,
        }


@dataclass
class RepairReport:
    """What one repair pass did about a :class:`ScrubReport`."""

    started_at: float
    finished_at: float = 0.0
    #: (segment_id, block index, cloud_id) re-encoded and re-placed.
    repaired: List[Tuple[str, int, str]] = field(default_factory=list)
    orphans_deleted: int = 0
    #: Segments with fewer than k verified surviving blocks — data loss.
    unrecoverable: List[str] = field(default_factory=list)

    @property
    def blocks_repaired(self) -> int:
        return len(self.repaired)

    def to_dict(self) -> dict:
        return {
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "blocks_repaired": self.blocks_repaired,
            "repaired": [list(item) for item in sorted(self.repaired)],
            "orphans_deleted": self.orphans_deleted,
            "unrecoverable": sorted(self.unrecoverable),
        }


class Scrubber:
    """Audit/repair engine bound to one client's view of the folder."""

    def __init__(self, client):
        self.client = client

    # -- audit -------------------------------------------------------------

    def audit(self, deep: bool = False):
        """Compare every cloud's block directory against the image.

        Shallow (default) audits compare listings and sizes only — one
        ``list_folder`` per cloud, no block downloads.  ``deep`` also
        downloads every referenced block and verifies its content hash,
        catching rot that preserves the size (which
        ``ObjectStore.corrupt`` — and real bit rot — does).
        """
        client = self.client
        report = ScrubReport(started_at=client.sim.now, deep=deep)
        listings: Dict[str, Dict[str, object]] = {}
        outcomes = yield from gather_safe(
            client.sim,
            [self._list_blocks(conn) for conn in client.connections],
        )
        for conn, (ok, entries) in zip(client.connections, outcomes):
            if not ok:
                report.unreachable.append(conn.cloud_id)
                continue
            listings[conn.cloud_id] = {
                entry.name: entry for entry in entries if not entry.is_folder
            }
        referenced: Dict[str, set] = {cid: set() for cid in listings}
        for segment_id in sorted(client.image.segments):
            record = client.image.segments[segment_id]
            if not record.locations:
                continue
            report.segments_checked += 1
            expected_size = client.pipeline.block_size(record)
            deep_pending: List[Tuple[int, str]] = []
            for index in sorted(record.locations):
                cloud_id = record.locations[index]
                name = record.block_name(index)
                referenced.setdefault(cloud_id, set()).add(name)
                held = listings.get(cloud_id)
                if held is None:
                    continue  # unreachable cloud: no evidence either way
                report.blocks_checked += 1
                entry = held.get(name)
                if entry is None:
                    report.missing.append((segment_id, index, cloud_id))
                    continue
                if entry.size != expected_size:
                    self._flag_corrupt(report, segment_id, index, cloud_id)
                    continue
                if deep:
                    deep_pending.append((index, cloud_id))
            if deep_pending:
                yield from self._deep_check_segment(
                    report, record, segment_id, deep_pending
                )
        for cloud_id, held in sorted(listings.items()):
            known = referenced.get(cloud_id, set())
            orphans = sorted(
                entry.path for name, entry in held.items()
                if name not in known
            )
            if orphans:
                report.orphaned[cloud_id] = orphans
        report.finished_at = client.sim.now
        return report

    def _list_blocks(self, conn: CloudAPI):
        """One cloud's block listing; a missing folder is just empty."""
        try:
            entries = yield from conn.list_folder(
                self.client.config.blocks_dir
            )
        except NotFoundError:
            return []
        return entries

    def _deep_check_segment(self, report, record, segment_id, pending):
        """Deep-verify one segment's referenced blocks.

        Downloads run sequentially in index order (same order and sim
        timing as per-block checking); the content fingerprints are
        then verified together in one batched reduction
        (:func:`block_hash_many`) — only host-CPU hash work is
        coalesced, and corruption events carry the sim time each rotten
        block finished downloading.
        """
        client = self.client
        fetched = []  # (index, cloud_id, block, expected, downloaded_at)
        for index, cloud_id in pending:
            conn = client._connection(cloud_id)
            if conn is None:
                continue
            try:
                block = yield from conn.download(
                    client.pipeline.block_path(record, index)
                )
            except CloudError:
                report.missing.append((segment_id, index, cloud_id))
                continue
            expected = record.block_hashes.get(index)
            if expected is None or not getattr(conn, "retains_content", True):
                continue
            fetched.append(
                (index, cloud_id, block, expected, client.sim.now)
            )
        digests = block_hash_many([item[2] for item in fetched])
        for (index, cloud_id, _, expected, t), digest in zip(
            fetched, digests
        ):
            if digest != expected:
                self._flag_corrupt(report, segment_id, index, cloud_id, t=t)

    def _flag_corrupt(self, report, segment_id, index, cloud_id,
                      t: Optional[float] = None) -> None:
        report.corrupt.append((segment_id, index, cloud_id))
        if METRICS.enabled:
            METRICS.inc("corrupt_detected", cloud=cloud_id)
        if TRACE.enabled:
            TRACE.event(
                "corrupt_block",
                t=self.client.sim.now if t is None else t,
                track=cloud_id,
                seg=segment_id[:12], block=index,
            )

    # -- repair ------------------------------------------------------------

    def repair(self, report: ScrubReport):
        """Heal the clouds back to the metadata image.

        Orphans are deleted; every damaged segment is decoded from any
        ``k`` surviving verified blocks, the damaged indices re-encoded
        (blocks are deterministic in ``(content, index)``) and uploaded
        to the cloud the image already records for them.  Corrupt
        survivors cannot poison the decode: fetches verify content
        hashes and treat mismatches as unreachable.
        """
        client = self.client
        out = RepairReport(started_at=client.sim.now)
        deletions = []
        for cloud_id, paths in sorted(report.orphaned.items()):
            conn = client._connection(cloud_id)
            if conn is None:
                continue
            for path in paths:
                deletions.append(conn.delete(path))
                out.orphans_deleted += 1
        if deletions:
            yield from gather_safe(client.sim, deletions)
            if METRICS.enabled:
                METRICS.inc("orphans_swept", out.orphans_deleted,
                            device=client.device)
        damaged: Dict[str, List[Tuple[int, str]]] = {}
        for segment_id, index, cloud_id in report.missing + report.corrupt:
            damaged.setdefault(segment_id, []).append((index, cloud_id))
        from .client import SyncError

        for segment_id in sorted(damaged):
            record = client.image.segments.get(segment_id)
            if record is None:
                continue
            span = (
                TRACE.begin(
                    "repair", t=client.sim.now, track=client.device,
                    seg=segment_id[:12], blocks=len(damaged[segment_id]),
                )
                if TRACE.enabled
                else None
            )
            try:
                blocks = yield from client._fetch_blocks(
                    record, record.k, client.connections
                )
            except SyncError:
                out.unrecoverable.append(segment_id)
                if span is not None:
                    TRACE.end(span, t=client.sim.now, error="unrecoverable")
                continue
            content = client.pipeline.decode_segment(record, blocks)
            state = client.pipeline.encode_state(record.segment_id, content)
            for index, cloud_id in sorted(set(damaged[segment_id])):
                conn = client._connection(cloud_id)
                if conn is None:
                    continue
                block = state.block(index)
                record.block_hashes.setdefault(index, block_hash(block))
                try:
                    yield from conn.upload(
                        client.pipeline.block_path(record, index), block
                    )
                except CloudError:
                    continue  # still damaged; a later scrub retries
                out.repaired.append((segment_id, index, cloud_id))
                if METRICS.enabled:
                    METRICS.inc("blocks_repaired", cloud=cloud_id)
            if span is not None:
                TRACE.end(span, t=client.sim.now,
                          repaired=len(damaged[segment_id]))
        out.finished_at = client.sim.now
        return out

    # -- redundancy debt (brownout commits) --------------------------------

    def owed_segments(self) -> List[str]:
        """Segments carrying redundancy debt, in deterministic order."""
        return sorted(
            sid for sid, record in self.client.image.segments.items()
            if record.debt and record.refcount > 0
        )

    def _debt_target(self, record) -> Optional[str]:
        """Pick the cloud to place one owed block on.

        Deterministic: the admitted cloud holding the fewest blocks of
        this segment (sorted-id tie-break), respecting the security cap
        on blocks per cloud.  After a brownout that starved exactly one
        cloud, that cloud holds zero blocks and wins — repayment
        restores the original fair-share placement exactly.  ``None``
        when no admitted cloud has room (e.g. breakers still open):
        the debt stays recorded for a later pass.
        """
        client = self.client
        degrade = getattr(client, "degrade", None)
        counts = {c.cloud_id: 0 for c in client.connections}
        for cloud in record.locations.values():
            if cloud in counts:
                counts[cloud] += 1
        cap = max_blocks_per_cloud(record.k, client.config.k_security)
        best = None
        for cloud_id in sorted(counts):
            if counts[cloud_id] >= cap:
                continue
            if degrade is not None and not degrade.admits(
                cloud_id, client.sim.now
            ):
                continue
            if best is None or counts[cloud_id] < counts[best]:
                best = cloud_id
        return best

    def repay_debt(self, commit: bool = True):
        """Repay redundancy debt left behind by brownout commits.

        For every segment owing indices, the content is decoded from
        any ``k`` verified blocks, exactly the owed indices re-encoded
        (blocks are deterministic in ``(content, index)``), and each
        placed via :meth:`_debt_target`.  Repaid indices leave the debt
        list through ``set_block_location``; with ``commit`` the
        updated image is republished so every device sees the restored
        placement.  Idempotent: an image with no debt is a no-op, and
        re-running after a partial repayment only touches the
        still-owed indices.

        Returns a :class:`RepairReport` (repaid blocks in
        ``repaired``).
        """
        client = self.client
        degrade = getattr(client, "degrade", None)
        out = RepairReport(started_at=client.sim.now)
        from .client import SyncError

        repaid_any = False
        for segment_id in self.owed_segments():
            record = client.image.segments[segment_id]
            span = (
                TRACE.begin(
                    "repair", t=client.sim.now, track=client.device,
                    kind="debt", seg=segment_id[:12],
                    owed=len(record.debt),
                )
                if TRACE.enabled
                else None
            )
            try:
                blocks = yield from client._fetch_blocks(
                    record, record.k, client.connections
                )
            except SyncError:
                out.unrecoverable.append(segment_id)
                if span is not None:
                    TRACE.end(span, t=client.sim.now,
                              error="unrecoverable")
                continue
            content = client.pipeline.decode_segment(record, blocks)
            state = client.pipeline.encode_state(segment_id, content)
            for index in sorted(record.debt):
                target = self._debt_target(record)
                if target is None:
                    continue  # nowhere admitted to place it; later pass
                conn = client._connection(target)
                if conn is None:
                    continue
                if degrade is not None:
                    degrade.note_dispatch(target, client.sim.now)
                block = state.block(index)
                record.block_hashes.setdefault(index, block_hash(block))
                try:
                    yield from conn.upload(
                        client.pipeline.block_path(record, index), block
                    )
                except CloudError:
                    if degrade is not None:
                        degrade.on_failure(target, client.sim.now)
                    continue  # still owed; a later pass retries
                if degrade is not None:
                    degrade.on_success(target, client.sim.now)
                client.image.set_block_location(segment_id, index, target)
                out.repaired.append((segment_id, index, target))
                repaid_any = True
                if METRICS.enabled:
                    METRICS.inc("debt_repaid", cloud=target)
            if TELEMETRY.enabled:
                TELEMETRY.debt(
                    client.sim.now, segment_id, len(record.debt)
                )
            if span is not None:
                TRACE.end(span, t=client.sim.now,
                          remaining=len(record.debt))
        if commit and repaid_any:
            yield from client._commit_rebalanced_image()
        out.finished_at = client.sim.now
        return out

    def scrub_round(self, deep: bool = False, repair: bool = True):
        """One audit pass, optionally followed by a repair pass.

        When segments carry redundancy debt (brownout commits), the
        repair phase also runs :meth:`repay_debt`, folding its results
        into the returned report.  Returns
        ``(ScrubReport, RepairReport | None)``.
        """
        span = (
            TRACE.begin(
                "scrub_round", t=self.client.sim.now,
                track=self.client.device, deep=deep,
            )
            if TRACE.enabled
            else None
        )
        audit = yield from self.audit(deep=deep)
        fixed: Optional[RepairReport] = None
        if repair and not audit.clean:
            fixed = yield from self.repair(audit)
        if repair and self.owed_segments():
            debt_fixed = yield from self.repay_debt()
            if fixed is None:
                fixed = debt_fixed
            else:
                fixed.repaired.extend(debt_fixed.repaired)
                fixed.unrecoverable.extend(debt_fixed.unrecoverable)
                fixed.finished_at = debt_fixed.finished_at
        if span is not None:
            TRACE.end(
                span, t=self.client.sim.now,
                missing=len(audit.missing), corrupt=len(audit.corrupt),
                orphans=audit.orphan_count,
                repaired=fixed.blocks_repaired if fixed else 0,
            )
        if METRICS.enabled:
            METRICS.inc("scrub_rounds", device=self.client.device)
        return audit, fixed

    # -- cloud membership --------------------------------------------------

    def decommission(self, cloud_id: str, wipe: bool = True):
        """Remove a cloud from the folder, restoring full fair share.

        Works for both planned removal (``wipe=True``: the departing
        provider is reachable and its block/metadata/lock directories
        are scrubbed on the way out) and **permanent loss**
        (``wipe=False``: the provider and its data are simply gone —
        every block it held is re-encoded from the survivors).  Either
        way each segment's placement is rebalanced over the remaining
        clouds, moved blocks are re-encoded from any ``k`` verified
        survivors, and the new image is committed under the (new,
        survivor-only) quorum lock.
        """
        client = self.client
        remaining = [
            c for c in client.connections if c.cloud_id != cloud_id
        ]
        if not remaining:
            raise ValueError("cannot remove the last cloud")
        if len(remaining) == len(client.connections):
            raise ValueError(f"{cloud_id} is not an enrolled cloud")
        client.config.validate(len(remaining))
        span = (
            TRACE.begin(
                "repair", t=client.sim.now, track=client.device,
                kind="decommission", cloud=cloud_id,
            )
            if TRACE.enabled
            else None
        )
        # Shed over-provisioned extras first so the survivors only have
        # to absorb the fair-share minimum.
        yield from client.gc_over_provisioned()
        remaining_ids = [c.cloud_id for c in remaining]
        moved_total = 0
        for segment_id in sorted(client.image.segments):
            record = client.image.segments[segment_id]
            if not record.locations:
                continue
            new_locations = rebalance_on_remove(
                record.locations, cloud_id, remaining_ids,
                record.k, client.config.k_reliability,
                client.config.k_security,
            )
            moves = [
                (index, target)
                for index, target in sorted(new_locations.items())
                if record.locations.get(index) != target
            ]
            if moves:
                # Any k verified blocks from the survivors reconstruct
                # the segment; the departed cloud is already excluded.
                blocks = yield from client._fetch_blocks(
                    record, record.k, remaining
                )
                content = client.pipeline.decode_segment(record, blocks)
                state = client.pipeline.encode_state(segment_id, content)
                for index, target in moves:
                    block = state.block(index)
                    record.block_hashes.setdefault(
                        index, block_hash(block)
                    )
                    conn = client._connection(target)
                    yield from conn.upload(
                        client.pipeline.block_path(record, index), block
                    )
                    moved_total += 1
                    if METRICS.enabled:
                        METRICS.inc("blocks_repaired", cloud=target)
            record.locations = new_locations
        if wipe:
            departing = client._connection(cloud_id)
            if departing is not None:
                yield from gather_safe(
                    client.sim,
                    [
                        departing.delete(client.config.blocks_dir),
                        departing.delete(client.config.meta_dir),
                        departing.delete(client.config.lock_dir),
                    ],
                )
        client.connections = remaining
        client.lock = QuorumLock(
            client.sim, client.connections, client.device,
            client.config, client.rng,
        )
        yield from client._commit_rebalanced_image()
        if span is not None:
            TRACE.end(span, t=client.sim.now, moved=moved_total)

    def integrate(self, connection: CloudAPI):
        """Enroll a new cloud: it adopts its fair share of every segment.

        Blocks move from clouds holding more than their fair share; when
        every survivor is already at the minimum, fresh parity indices
        are minted for the new cloud instead (the non-systematic code
        produces any index < n), so no donor ever drops below fair
        share.
        """
        client = self.client
        all_connections = client.connections + [connection]
        client.config.validate(len(all_connections))
        all_ids = [c.cloud_id for c in all_connections]
        span = (
            TRACE.begin(
                "repair", t=client.sim.now, track=client.device,
                kind="integrate", cloud=connection.cloud_id,
            )
            if TRACE.enabled
            else None
        )
        adopted_total = 0
        for segment_id in sorted(client.image.segments):
            record = client.image.segments[segment_id]
            if not record.locations:
                continue
            old_locations = dict(record.locations)
            new_locations = rebalance_on_add(
                old_locations, connection.cloud_id, all_ids,
                record.k, client.config.k_reliability, n=record.n,
            )
            adopted = [
                index for index, cloud in new_locations.items()
                if cloud == connection.cloud_id
                and old_locations.get(index) != connection.cloud_id
            ]
            if adopted:
                blocks = yield from client._fetch_blocks(
                    record, record.k, client.connections
                )
                content = client.pipeline.decode_segment(record, blocks)
                state = client.pipeline.encode_state(segment_id, content)
                for index in sorted(adopted):
                    block = state.block(index)
                    record.block_hashes.setdefault(
                        index, block_hash(block)
                    )
                    yield from connection.upload(
                        client.pipeline.block_path(record, index), block
                    )
                    adopted_total += 1
                    donor = old_locations.get(index)
                    donor_conn = (
                        client._connection(donor)
                        if donor is not None else None
                    )
                    if donor_conn is not None:
                        yield from donor_conn.delete(
                            client.pipeline.block_path(record, index)
                        )
            record.locations = new_locations
        client.connections = all_connections
        client.lock = QuorumLock(
            client.sim, client.connections, client.device,
            client.config, client.rng,
        )
        yield from client._commit_rebalanced_image()
        if span is not None:
            TRACE.end(span, t=client.sim.now, adopted=adopted_total)
