"""Three-way metadata merge with conflict retention (paper §5.2).

When a device holds local updates and discovers cloud updates committed
by another device, it reconciles them SVN/GIT-style:

* ``delta_local  = diff(v_o, v_l)`` and ``delta_cloud = diff(v_o, v_c)``
  are computed by tree comparison against the common ancestor ``v_o``;
* paths touched by only one side merge automatically;
* paths touched by both sides with different outcomes are **conflicts**:
  the cloud version stays current, the local snapshot is *retained* in
  the entry's conflict list (its content data is never discarded), and
  the caller surfaces it to the user;
* edit-vs-delete resolves in favour of the edit (no silent data loss).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .metadata import FileSnapshot, SyncFolderImage

__all__ = ["ChangeType", "diff_images", "merge_images", "recompute_refcounts",
           "MergeResult"]


class ChangeType:
    UPSERT = "upsert"
    DELETE = "delete"


def diff_images(
    old: SyncFolderImage, new: SyncFolderImage
) -> Dict[str, Tuple[str, Optional[FileSnapshot]]]:
    """Per-path changes from ``old`` to ``new`` (tree comparison).

    Returns ``{path: (ChangeType, snapshot-or-None)}``; unchanged paths
    (identical signatures) are omitted.
    """
    changes: Dict[str, Tuple[str, Optional[FileSnapshot]]] = {}
    for path, entry in new.files.items():
        old_entry = old.files.get(path)
        if old_entry is None or (
            old_entry.current.signature() != entry.current.signature()
        ):
            changes[path] = (ChangeType.UPSERT, entry.current)
    for path in old.files:
        if path not in new.files:
            changes[path] = (ChangeType.DELETE, None)
    return changes


@dataclass
class MergeResult:
    """Outcome of a three-way merge."""

    image: SyncFolderImage
    conflicts: List[str]  # paths where both sides changed differently
    applied_local: List[str]  # local changes that made it into the merge


def merge_images(
    base: SyncFolderImage,
    local: SyncFolderImage,
    cloud: SyncFolderImage,
) -> MergeResult:
    """Merge concurrent local and cloud updates over a common base."""
    delta_local = diff_images(base, local)
    delta_cloud = diff_images(base, cloud)
    merged = cloud.copy()
    conflicts: List[str] = []
    applied: List[str] = []

    # Segment pool union first, so upserts can reference local segments.
    for segment_id, record in local.segments.items():
        if segment_id in merged.segments:
            merged.segments[segment_id].locations.update(record.locations)
            merged.segments[segment_id].block_hashes.update(record.block_hashes)
        else:
            merged.add_segment(record.__class__.from_dict(record.to_dict()))

    for path, (kind, snapshot) in delta_local.items():
        cloud_change = delta_cloud.get(path)
        if cloud_change is None:
            # Only the local side touched this path.
            if kind == ChangeType.UPSERT:
                merged.upsert_file(snapshot)
            else:
                merged.delete_file(path)
            applied.append(path)
            continue
        cloud_kind, cloud_snapshot = cloud_change
        if kind == cloud_kind == ChangeType.DELETE:
            continue  # both deleted: agreement
        if (
            kind == cloud_kind == ChangeType.UPSERT
            and snapshot.signature() == cloud_snapshot.signature()
        ):
            continue  # coincident identical update: agreement
        if kind == ChangeType.UPSERT and cloud_kind == ChangeType.DELETE:
            # Edit-vs-delete: the edit wins (resurrect the file).
            merged.upsert_file(snapshot)
            applied.append(path)
            continue
        if kind == ChangeType.DELETE and cloud_kind == ChangeType.UPSERT:
            # Delete-vs-edit: the cloud edit stays; nothing to retain.
            conflicts.append(path)
            continue
        # Divergent edits: cloud stays current, local retained.
        merged.add_conflict(path, snapshot)
        conflicts.append(path)

    recompute_refcounts(merged)
    return MergeResult(image=merged, conflicts=sorted(conflicts),
                       applied_local=sorted(applied))


def recompute_refcounts(image: SyncFolderImage) -> None:
    """Rebuild the segment pool's reference counts from file entries.

    Run after a merge: incremental counting across three images is
    error-prone, whereas the file entries are the single source of truth.
    Unreferenced segments are kept (refcount 0) for the garbage collector
    to reap along with their cloud blocks.
    """
    for record in image.segments.values():
        record.refcount = 0
    for entry in image.files.values():
        for segment_id in entry.current.segment_ids:
            if segment_id in image.segments:
                image.segments[segment_id].refcount += 1
        for conflict in entry.conflicts:
            for segment_id in conflict.segment_ids:
                if segment_id in image.segments:
                    image.segments[segment_id].refcount += 1
