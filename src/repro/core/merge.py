"""Three-way metadata merge with conflict retention (paper §5.2).

When a device holds local updates and discovers cloud updates committed
by another device, it reconciles them SVN/GIT-style:

* ``delta_local  = diff(v_o, v_l)`` and ``delta_cloud = diff(v_o, v_c)``
  are computed by tree comparison against the common ancestor ``v_o``;
* paths touched by only one side merge automatically;
* paths touched by both sides with different outcomes are **conflicts**,
  handled by the folder's :class:`MergePolicy`:

  - ``retain-both`` (the paper's default): the cloud version stays
    current, the local snapshot is *retained* in the entry's conflict
    list (its content data is never discarded), and the caller surfaces
    it to the user;
  - ``last-writer-wins``: the snapshot with the larger
    ``(timestamp, device)`` key becomes current and the loser is
    deliberately discarded — deterministic on every device because the
    key is part of the snapshots being merged, never local state;
  - ``per-path``: a caller-supplied **pure** function of
    ``(path, local, cloud)`` returns one of ``"retain"`` / ``"local"``
    / ``"cloud"``.  It must be deterministic: the merging device
    commits the *outcome* to metadata, so every reader replays the
    same decision, but two devices merging concurrently (a broken
    lock) would each consult their own copy of the callback.

* edit-vs-delete resolves in favour of the edit (no silent data loss),
  under every policy.

Concurrent-retention subtlety (the lost-update bug this module once
had): ``diff_images`` compares only *current* snapshots — a cloud-side
commit that merely **retained a conflict snapshot** under a path is
invisible to the tree diff.  A local delete of that path used to take
the "only the local side touched this" shortcut and drop the retained
snapshot with the entry — silently losing a committed update that the
deleting device had never seen.  ``merge_images`` now checks the cloud
entry for conflict snapshots that are *fresh* relative to the base and
lets them win against the blind delete (the same rule as
edit-vs-delete: an edit beats a delete).  Conflicts the base already
carried were visible to the deleting user, so a delete still covers
those deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .metadata import FileSnapshot, SyncFolderImage

__all__ = [
    "ChangeType",
    "MergePolicy",
    "MergeResult",
    "RETAIN_BOTH",
    "LAST_WRITER_WINS",
    "PER_PATH",
    "diff_images",
    "merge_images",
    "recompute_refcounts",
]


class ChangeType:
    UPSERT = "upsert"
    DELETE = "delete"


#: Conflict-policy names (``UniDriveConfig.conflict_policy``).
RETAIN_BOTH = "retain-both"
LAST_WRITER_WINS = "last-writer-wins"
PER_PATH = "per-path"

_POLICY_NAMES = (RETAIN_BOTH, LAST_WRITER_WINS, PER_PATH)
_DECISIONS = ("retain", "local", "cloud")


@dataclass(frozen=True)
class MergePolicy:
    """How divergent concurrent edits of one path are reconciled.

    ``resolver`` is consulted only under the ``per-path`` policy; it
    must be a pure function ``(path, local, cloud) -> decision`` with
    decision one of ``"retain"``, ``"local"``, ``"cloud"``.
    """

    name: str = RETAIN_BOTH
    resolver: Optional[
        Callable[[str, FileSnapshot, FileSnapshot], str]
    ] = None

    def __post_init__(self):
        if self.name not in _POLICY_NAMES:
            raise ValueError(
                f"unknown conflict policy {self.name!r}; "
                f"pick one of {_POLICY_NAMES}"
            )
        if self.name == PER_PATH and self.resolver is None:
            raise ValueError("per-path policy needs a resolver callback")

    def decide(self, path: str, local: FileSnapshot,
               cloud: FileSnapshot) -> str:
        """Reconcile one divergent edit; returns retain/local/cloud."""
        if self.name == LAST_WRITER_WINS:
            local_key = (local.timestamp, local.device)
            cloud_key = (cloud.timestamp, cloud.device)
            return "local" if local_key > cloud_key else "cloud"
        if self.name == PER_PATH:
            decision = self.resolver(path, local, cloud)
            if decision not in _DECISIONS:
                raise ValueError(
                    f"per-path resolver returned {decision!r}; "
                    f"expected one of {_DECISIONS}"
                )
            return decision
        return "retain"


#: Shared default so ``merge_images(policy=None)`` allocates nothing.
_DEFAULT_POLICY = MergePolicy()


def diff_images(
    old: SyncFolderImage, new: SyncFolderImage
) -> Dict[str, Tuple[str, Optional[FileSnapshot]]]:
    """Per-path changes from ``old`` to ``new`` (tree comparison).

    Returns ``{path: (ChangeType, snapshot-or-None)}``; unchanged paths
    (identical signatures) are omitted.  Only *current* snapshots are
    compared — conflict retention is invisible to the diff, which is
    why :func:`merge_images` re-checks cloud entries before honouring a
    local delete.
    """
    changes: Dict[str, Tuple[str, Optional[FileSnapshot]]] = {}
    for path, entry in new.files.items():
        old_entry = old.files.get(path)
        if old_entry is None or (
            old_entry.current.signature() != entry.current.signature()
        ):
            changes[path] = (ChangeType.UPSERT, entry.current)
    for path in old.files:
        if path not in new.files:
            changes[path] = (ChangeType.DELETE, None)
    return changes


@dataclass
class MergeResult:
    """Outcome of a three-way merge."""

    image: SyncFolderImage
    conflicts: List[str]  # paths where both sides changed differently
    applied_local: List[str]  # local changes that made it into the merge
    resolved: List[str]  # conflicts a policy settled without retention


def _fresh_conflicts(base: SyncFolderImage, cloud: SyncFolderImage,
                     path: str) -> List[FileSnapshot]:
    """Cloud-retained conflict snapshots the base never carried.

    These were committed concurrently with whatever the local side did
    to ``path``: the local device could not have seen them, so no local
    operation may silently discard them.
    """
    cloud_entry = cloud.files.get(path)
    if cloud_entry is None or not cloud_entry.conflicts:
        return []
    base_entry = base.files.get(path)
    base_sigs = (
        {snap.signature() for snap in base_entry.conflicts}
        if base_entry is not None else set()
    )
    return [
        snap for snap in cloud_entry.conflicts
        if snap.signature() not in base_sigs
    ]


def merge_images(
    base: SyncFolderImage,
    local: SyncFolderImage,
    cloud: SyncFolderImage,
    policy: Optional[MergePolicy] = None,
) -> MergeResult:
    """Merge concurrent local and cloud updates over a common base."""
    policy = policy or _DEFAULT_POLICY
    delta_local = diff_images(base, local)
    delta_cloud = diff_images(base, cloud)
    merged = cloud.copy()
    conflicts: List[str] = []
    applied: List[str] = []
    resolved: List[str] = []

    # Segment pool union first, so upserts can reference local segments.
    for segment_id, record in local.segments.items():
        if segment_id in merged.segments:
            merged.segments[segment_id].locations.update(record.locations)
            merged.segments[segment_id].block_hashes.update(record.block_hashes)
        else:
            merged.add_segment(record.__class__.from_dict(record.to_dict()))

    for path, (kind, snapshot) in delta_local.items():
        cloud_change = delta_cloud.get(path)
        if cloud_change is None:
            # Only the local side touched this path's *current* snapshot.
            if kind == ChangeType.UPSERT:
                merged.upsert_file(snapshot)  # preserves cloud conflicts
                applied.append(path)
                continue
            retained = _fresh_conflicts(base, cloud, path)
            if retained:
                # Delete-vs-concurrent-retention: the retained edits win
                # (the edit-beats-delete rule).  Promote the newest
                # fresh snapshot to current; keep the rest retained.
                merged.delete_file(path)
                merged.upsert_file(retained[-1])
                for leftover in retained[:-1]:
                    merged.add_conflict(path, leftover)
                conflicts.append(path)
            else:
                merged.delete_file(path)
                applied.append(path)
            continue
        cloud_kind, cloud_snapshot = cloud_change
        if kind == cloud_kind == ChangeType.DELETE:
            continue  # both deleted: agreement
        if (
            kind == cloud_kind == ChangeType.UPSERT
            and snapshot.signature() == cloud_snapshot.signature()
        ):
            continue  # coincident identical update: agreement
        if kind == ChangeType.UPSERT and cloud_kind == ChangeType.DELETE:
            # Edit-vs-delete: the edit wins (resurrect the file).
            merged.upsert_file(snapshot)
            applied.append(path)
            continue
        if kind == ChangeType.DELETE and cloud_kind == ChangeType.UPSERT:
            # Delete-vs-edit: the cloud edit stays; nothing to retain.
            conflicts.append(path)
            continue
        # Divergent edits: the policy picks a winner or retains both.
        decision = policy.decide(path, snapshot, cloud_snapshot)
        if decision == "local":
            merged.upsert_file(snapshot)
            applied.append(path)
            resolved.append(path)
        elif decision == "cloud":
            resolved.append(path)  # cloud already current in merged
        else:
            # Cloud stays current, local retained for the user.
            merged.add_conflict(path, snapshot)
            conflicts.append(path)

    recompute_refcounts(merged)
    return MergeResult(image=merged, conflicts=sorted(conflicts),
                       applied_local=sorted(applied),
                       resolved=sorted(resolved))


def recompute_refcounts(image: SyncFolderImage) -> None:
    """Rebuild the segment pool's reference counts from file entries.

    Run after a merge: incremental counting across three images is
    error-prone, whereas the file entries are the single source of truth.
    Unreferenced segments are kept (refcount 0) for the garbage collector
    to reap along with their cloud blocks.
    """
    for record in image.segments.values():
        record.refcount = 0
    for entry in image.files.values():
        for segment_id in entry.current.segment_ids:
            if segment_id in image.segments:
                image.segments[segment_id].refcount += 1
        for conflict in entry.conflicts:
            for segment_id in conflict.segment_ids:
                if segment_id in image.segments:
                    image.segments[segment_id].refcount += 1
