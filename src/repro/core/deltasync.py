"""Delta-sync: base + log-structured delta metadata files (paper §5.2).

The full image (*base*) is expensive to re-upload on every commit once
the folder holds many files.  Instead, each commit appends operation
records to a *delta* file; readers reconstruct the current image as
``apply(delta, base)``.  When the delta outgrows the threshold λ the
committer folds it into a new base and clears the delta.

Cloud storage offers no append primitive, so "appending" means
download-extend-upload of the delta file — still a fraction of the cost
of re-uploading the base (measured in the Figure 13 benchmark).
"""

from __future__ import annotations

import json
from typing import List

from ..crypto import decrypt_cbc, encrypt_cbc
from .config import UniDriveConfig
from .metadata import FileSnapshot, SegmentRecord, SyncFolderImage

__all__ = [
    "DeltaLog",
    "op_upsert_file",
    "op_delete_file",
    "op_add_conflict",
    "op_add_segment",
    "op_set_location",
    "op_drop_segment",
    "op_resolve_conflict",
    "op_set_version",
    "op_base_version",
    "op_txn_round",
    "should_merge",
]


def op_upsert_file(snapshot: FileSnapshot) -> dict:
    return {"op": "upsert_file", "snapshot": snapshot.to_dict()}


def op_delete_file(path: str) -> dict:
    return {"op": "delete_file", "path": path}


def op_add_conflict(path: str, snapshot: FileSnapshot) -> dict:
    return {"op": "add_conflict", "path": path, "snapshot": snapshot.to_dict()}


def op_add_segment(record: SegmentRecord) -> dict:
    return {"op": "add_segment", "segment": record.to_dict()}


def op_set_location(segment_id: str, index: int, cloud_id: str) -> dict:
    return {
        "op": "set_location",
        "segment_id": segment_id,
        "index": index,
        "cloud_id": cloud_id,
    }


def op_drop_segment(segment_id: str) -> dict:
    return {"op": "drop_segment", "segment_id": segment_id}


def op_set_version(counter: int, device: str) -> dict:
    return {"op": "set_version", "counter": counter, "device": device}


def op_base_version(counter: int) -> dict:
    """Marker stamped as a fresh delta's first op at fold time.

    Records which base version the log extends, so a reader can detect
    a *corrupt pair* — a cloud that missed a fold (stale base) but later
    received replicated delta appends.  Applying the marker is a no-op.
    """
    return {"op": "base_version", "counter": counter}


def op_resolve_conflict(path: str, keep_conflict_index=None) -> dict:
    return {
        "op": "resolve_conflict",
        "path": path,
        "keep_conflict_index": keep_conflict_index,
    }


def op_txn_round(round_id: str, counter: int, device: str,
                 ops: List[dict]) -> dict:
    """One sync round's operations as a single all-or-nothing record.

    Under ``UniDriveConfig.transactional_rounds`` the committer wraps
    the whole round — segment registrations, upserts, deletes — into
    one record carrying the round's version stamp, instead of appending
    the ops individually.  The record is the commit marker: a reader
    either replays the entire round (ops then version bump) or, if the
    record never reached its replica, none of it.  ``round_id``
    (``device:counter``) makes replay idempotent when a crash-resumed
    publish lands the same round in a log twice.
    """
    return {
        "op": "txn_round",
        "round_id": round_id,
        "counter": counter,
        "device": device,
        "ops": list(ops),
    }


class DeltaLog:
    """An ordered list of metadata operations, replayable onto an image."""

    def __init__(self, ops: List[dict] = None):
        self.ops: List[dict] = list(ops) if ops else []

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: dict) -> None:
        self.ops.append(op)

    def extend(self, ops: List[dict]) -> None:
        self.ops.extend(ops)

    def clear(self) -> None:
        self.ops.clear()

    def apply_to(self, image: SyncFolderImage) -> None:
        """Replay every operation, in order, onto ``image`` (in place)."""
        seen_rounds: set = set()
        for op in self.ops:
            self._apply_op(image, op, seen_rounds)

    def _apply_op(self, image: SyncFolderImage, op: dict,
                  seen_rounds: set) -> None:
        kind = op["op"]
        if kind == "txn_round":
            # All-or-nothing round: replay its ops then its version
            # stamp.  A round already replayed in this pass (duplicated
            # by a crash-resumed publish) is skipped wholesale.
            round_id = op["round_id"]
            if round_id in seen_rounds:
                return
            seen_rounds.add(round_id)
            for inner in op["ops"]:
                if inner["op"] == "txn_round":
                    raise ValueError("txn_round records do not nest")
                self._apply_op(image, inner, seen_rounds)
            image.version.counter = op["counter"]
            image.version.device = op["device"]
        elif kind == "upsert_file":
            image.upsert_file(FileSnapshot.from_dict(op["snapshot"]))
        elif kind == "delete_file":
            image.delete_file(op["path"])
        elif kind == "add_conflict":
            image.add_conflict(
                op["path"], FileSnapshot.from_dict(op["snapshot"])
            )
        elif kind == "add_segment":
            image.add_segment(SegmentRecord.from_dict(op["segment"]))
        elif kind == "set_location":
            image.set_block_location(
                op["segment_id"], op["index"], op["cloud_id"]
            )
        elif kind == "drop_segment":
            image.drop_segment(op["segment_id"])
        elif kind == "set_version":
            image.version.counter = op["counter"]
            image.version.device = op["device"]
        elif kind == "base_version":
            pass  # pair-consistency marker; carries no state
        elif kind == "resolve_conflict":
            image.resolve_conflict(
                op["path"], op.get("keep_conflict_index")
            )
        else:
            raise ValueError(f"unknown delta operation {kind!r}")

    # -- version bookkeeping ----------------------------------------------

    def latest_version(self) -> int:
        """Counter of the last version-bearing op (0 for none).

        Under the quorum lock every commit appends exactly one
        version-bearing record — ``set_version``, or a ``txn_round``
        carrying its stamp inline — so this is the version a reader
        ends at after replaying the log: the freshness criterion
        :meth:`UniDriveClient._publish_delta` selects deltas by.
        """
        for op in reversed(self.ops):
            if op["op"] in ("set_version", "txn_round"):
                return int(op["counter"])
        return 0

    def base_marker(self) -> int:
        """Base version this log extends (see :func:`op_base_version`).

        Returns -1 when the log carries no marker (pre-marker logs and
        the empty delta of a never-folded folder), meaning the pair
        cannot be validated and is accepted as-is.
        """
        for op in self.ops:
            if op["op"] == "base_version":
                return int(op["counter"])
        return -1

    # -- wire format -----------------------------------------------------

    def to_bytes(self, key: bytes) -> bytes:
        """Encrypted JSON-lines encoding (one op per line)."""
        lines = "\n".join(
            json.dumps(op, sort_keys=True, separators=(",", ":"))
            for op in self.ops
        ).encode()
        import hashlib

        iv = hashlib.sha1(lines).digest()[:8]
        return encrypt_cbc(key, lines, iv)

    @staticmethod
    def from_bytes(blob: bytes, key: bytes) -> "DeltaLog":
        plaintext = decrypt_cbc(key, blob).decode()
        ops = [json.loads(line) for line in plaintext.splitlines() if line]
        return DeltaLog(ops)


def should_merge(base_size: int, delta_size: int,
                 config: UniDriveConfig) -> bool:
    """Has the delta reached the merge threshold λ?

    λ = min(ratio * base size, absolute cap); the delta merges into the
    base as soon as it reaches whichever bound is smaller.
    """
    threshold = min(
        config.delta_merge_ratio * max(base_size, 1),
        float(config.delta_merge_bytes),
    )
    return delta_size >= threshold
