"""Degradation control plane: breakers, deadlines, hedging, debt.

The PR-9 :class:`~repro.obs.health.HealthScoreboard` *observes* cloud
degradation; this module *acts* on it.  Four mechanisms close the
health-to-action loop, all inert unless ``config.degrade_enabled``:

* **Per-cloud circuit breakers** — a closed/open/half-open state
  machine driven purely by the failure evidence the data path already
  produces (RetryPolicy classifications from scheduler workers and
  ``client._replicate``) plus the health scoreboard's score.  An open
  cloud receives *no* regular dispatch — only a bounded number of
  half-open probes after a deterministic sim-clock cooldown — instead
  of a fresh full retry budget every sync round.

* **Deadline budgets** — :class:`DeadlineBudget` carries one sync
  round's remaining time through metadata fetch, upload/download
  batches, and lock acquisition, so a round degrades or aborts cleanly
  instead of stacking worst-case timeouts.

* **Hedged fetches** — the download scheduler consults
  :meth:`DegradeController.hedge_threshold` to race a duplicate block
  request (a *different* erasure-coded index of the same segment, since
  any k of n reconstruct) to the next-healthiest cloud once an
  in-flight fetch exceeds a multiple of its estimator-predicted
  duration, cancelling the loser and capping hedge bytes.

* **Brownout writes** — when fewer than n blocks can be placed, the
  commit proceeds with the reachable subset (never below
  ``k + brownout_floor``) and the missing indices are recorded as
  *redundancy debt* in segment metadata for ``core/scrub.py`` to repay
  once breakers close.

Everything here is pure bookkeeping on the caller's sim clock: no
randomness is drawn and no events are scheduled, so consulting the
controller can never perturb a deterministic run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs import TELEMETRY, TRACE
from .config import UniDriveConfig

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "DeadlineBudget",
    "DegradeController",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One cloud's closed/open/half-open admission state machine.

    The breaker only ever opens on *failure evidence*: a transient
    failure count reaching ``failure_threshold``, a fatal (fail-fast /
    give-up) classification, or a half-open probe failing.  Time alone
    moves it from open to half-open (after ``cooldown`` virtual
    seconds); only probe successes close it again.  All transitions are
    a pure function of the (timestamped) call sequence — no randomness,
    no scheduled events — so breaker behaviour is deterministic under
    the deterministic simulator.
    """

    __slots__ = (
        "cloud_id", "failure_threshold", "cooldown", "probe_quota",
        "close_after", "state", "failures", "probes_issued",
        "probe_successes", "opened_at", "transitions",
    )

    def __init__(
        self,
        cloud_id: str,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        probe_quota: int = 1,
        close_after: int = 1,
    ):
        self.cloud_id = cloud_id
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.probe_quota = probe_quota
        self.close_after = close_after
        self.state = CLOSED
        self.failures = 0
        self.probes_issued = 0
        self.probe_successes = 0
        self.opened_at: Optional[float] = None
        #: ``(t, from_state, to_state)`` history, for tests and the
        #: flapping gate.
        self.transitions: List[Tuple[float, str, str]] = []

    def _transition(self, t: float, to_state: str) -> None:
        if to_state == self.state:
            return
        self.transitions.append((t, self.state, to_state))
        if TRACE.enabled:
            TRACE.event(
                "breaker_transition", t=t, track=self.cloud_id,
                src=self.state, dst=to_state,
            )
        self.state = to_state

    def _maybe_half_open(self, t: float) -> None:
        if (
            self.state == OPEN
            and self.opened_at is not None
            and t - self.opened_at >= self.cooldown
        ):
            self.probes_issued = 0
            self.probe_successes = 0
            self._transition(t, HALF_OPEN)

    def admits(self, t: float) -> bool:
        """Whether a request to this cloud may be dispatched at ``t``.

        Open-to-half-open is a deterministic function of ``t``, so the
        check is idempotent and safe to call from peeking code paths;
        it never consumes a probe slot (see :meth:`note_dispatch`).
        """
        self._maybe_half_open(t)
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return self.probes_issued < self.probe_quota
        return False

    def note_dispatch(self, t: float) -> None:
        """Account one committed dispatch (consumes a half-open probe)."""
        self._maybe_half_open(t)
        if self.state == HALF_OPEN:
            self.probes_issued += 1

    def record_success(self, t: float) -> None:
        if self.state == HALF_OPEN:
            self.probe_successes += 1
            if self.probe_successes >= self.close_after:
                self.failures = 0
                self.opened_at = None
                self._transition(t, CLOSED)
        elif self.state == CLOSED:
            self.failures = 0
        # A success while OPEN is a straggler from before the breaker
        # tripped; the cooldown clock keeps running unperturbed.

    def record_failure(self, t: float, fatal: bool = False) -> None:
        self._maybe_half_open(t)
        if self.state == HALF_OPEN:
            # A failed probe re-opens immediately and re-arms cooldown.
            self.opened_at = t
            self._transition(t, OPEN)
            return
        if self.state == CLOSED:
            if fatal:
                self.failures = max(self.failures, self.failure_threshold)
            else:
                self.failures += 1
            if self.failures >= self.failure_threshold:
                self.opened_at = t
                self._transition(t, OPEN)
        # Failures while already OPEN are stragglers: ignoring them
        # keeps the cooldown bounded (re-arming on every late failure
        # could hold a breaker open forever under pipelined traffic).

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "failures": self.failures,
            "probes_issued": self.probes_issued,
            "opened_at": self.opened_at,
            "transitions": [
                {"t": t, "from": src, "to": dst}
                for t, src, dst in self.transitions
            ],
        }


class DeadlineBudget:
    """One sync round's remaining-time budget on the sim clock."""

    __slots__ = ("sim", "deadline")

    def __init__(self, sim, seconds: float):
        self.sim = sim
        self.deadline = sim.now + seconds

    @property
    def expired(self) -> bool:
        return self.sim.now >= self.deadline

    def remaining(self) -> float:
        return max(0.0, self.deadline - self.sim.now)

    def clamp(self, timeout: float) -> float:
        """Shrink a step's own timeout to the round's remaining budget."""
        return min(timeout, self.remaining())


class DegradeController:
    """Fleet-wide admission control consulted by the data path.

    One controller lives on the client (sharing breaker state across
    every upload/download batch and metadata operation of that client),
    and is handed to both schedulers and ``_replicate``.  Admission
    combines two signals:

    * the cloud's own :class:`CircuitBreaker` (failure evidence from
      this client's requests), and
    * the health scoreboard, through the process telemetry hub's
      safe-while-disabled queries — a cloud the scoreboard pins
      ``unavailable`` gets no regular dispatch even before this
      client's own breaker has gathered evidence.
    """

    def __init__(self, config: UniDriveConfig,
                 health_gate: bool = True):
        self.config = config
        self.health_gate = health_gate
        self._breakers: Dict[str, CircuitBreaker] = {}

    # -- breaker plumbing --------------------------------------------------

    def breaker(self, cloud_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(cloud_id)
        if breaker is None:
            breaker = CircuitBreaker(
                cloud_id,
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown=self.config.breaker_cooldown_seconds,
                probe_quota=self.config.breaker_probe_quota,
                close_after=self.config.breaker_close_after,
            )
            self._breakers[cloud_id] = breaker
        return breaker

    def admits(self, cloud_id: str, t: float) -> bool:
        """Whether regular dispatch (or a probe slot) is available."""
        breaker = self.breaker(cloud_id)
        if not breaker.admits(t):
            return False
        if (
            self.health_gate
            and TELEMETRY.enabled
            and TELEMETRY.health_pinned(cloud_id)
        ):
            # The scoreboard is inside an authoritative outage window
            # for this cloud — don't burn a fresh failure budget
            # rediscovering it.  Only the *pin* denies here: once the
            # window closes traffic resumes immediately, because the
            # sticky unavailable state can only recover through the
            # very evidence a hard gate would starve it of.
            return False
        return True

    def note_dispatch(self, cloud_id: str, t: float) -> None:
        self.breaker(cloud_id).note_dispatch(t)

    def on_success(self, cloud_id: str, t: float) -> None:
        self.breaker(cloud_id).record_success(t)

    def on_failure(self, cloud_id: str, t: float,
                   fatal: bool = False) -> None:
        self.breaker(cloud_id).record_failure(t, fatal=fatal)

    def state(self, cloud_id: str) -> str:
        return self.breaker(cloud_id).state

    def all_closed(self) -> bool:
        return all(b.state == CLOSED for b in self._breakers.values())

    # -- deadline budgets --------------------------------------------------

    def round_budget(self, sim) -> Optional[DeadlineBudget]:
        seconds = self.config.round_deadline_seconds
        if seconds <= 0:
            return None
        return DeadlineBudget(sim, seconds)

    # -- hedging -----------------------------------------------------------

    @property
    def hedging(self) -> bool:
        return self.config.hedge_bytes_fraction > 0.0

    def hedge_threshold(self, estimate_bps: float,
                        nbytes: int) -> Optional[float]:
        """Seconds after which an in-flight fetch is hedge-eligible.

        ``None`` when the primary cloud has no finite throughput
        estimate yet — without a prediction there is no basis to call
        the fetch slow.
        """
        if estimate_bps <= 0 or estimate_bps == float("inf"):
            return None
        return (nbytes / estimate_bps) * self.config.hedge_latency_factor

    def snapshot(self) -> dict:
        return {
            cloud: breaker.snapshot()
            for cloud, breaker in sorted(self._breakers.items())
        }
