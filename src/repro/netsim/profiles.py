"""Link profile structures gluing the stochastic models together.

A :class:`LinkProfile` holds the *parameters* of one client-to-cloud
path; :class:`LinkConditions` instantiates the live stochastic
processes (two bandwidth directions, latency, failures) from it.  The
actual numeric tables for the paper's PlanetLab / EC2 vantage points
live in :mod:`repro.workloads.locations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .bandwidth import MBPS, BandwidthProcess
from .failures import FailureModel, StressProcess
from .latency import LatencyModel

__all__ = ["LinkProfile", "LinkConditions", "MBPS"]


@dataclass(frozen=True)
class LinkProfile:
    """Parameters of one (client location, cloud) network path."""

    up_mbps: float  # mean per-connection upload rate, megabits/second
    down_mbps: float  # mean per-connection download rate
    rtt_seconds: float = 0.25  # request setup latency
    latency_jitter: float = 0.35  # lognormal sigma of setup latency
    failure_rate: float = 0.01  # base per-request failure probability
    accessible: bool = True  # False models spatial outage (e.g. GFW)
    volatility: float = 0.5  # log-space bandwidth standard deviation
    ar_coefficient: float = 0.8
    fade_probability: float = 0.02
    fade_depth: float = 8.0
    diurnal_amplitude: float = 0.15
    epoch_seconds: float = 60.0
    extra_args: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "LinkProfile":
        """A copy with bandwidth scaled by ``factor`` (what-if studies)."""
        return LinkProfile(
            up_mbps=self.up_mbps * factor,
            down_mbps=self.down_mbps * factor,
            rtt_seconds=self.rtt_seconds,
            latency_jitter=self.latency_jitter,
            failure_rate=self.failure_rate,
            accessible=self.accessible,
            volatility=self.volatility,
            ar_coefficient=self.ar_coefficient,
            fade_probability=self.fade_probability,
            fade_depth=self.fade_depth,
            diurnal_amplitude=self.diurnal_amplitude,
            epoch_seconds=self.epoch_seconds,
            extra_args=dict(self.extra_args),
        )


class LinkConditions:
    """Live stochastic processes for one client-to-cloud path."""

    #: Multiplier chunks retained per direction in lean mode — wide
    #: enough for any replay/fast-forward span a trial-length sim can
    #: produce (4 x 4096 epochs = ~11 days at the 60 s default epoch).
    LEAN_WINDOW_CHUNKS = 4

    def __init__(
        self,
        profile: LinkProfile,
        cloud_id: str,
        rng: np.random.Generator,
        stress: StressProcess = None,
        lean: bool = False,
    ):
        self.profile = profile
        self.cloud_id = cloud_id
        window = self.LEAN_WINDOW_CHUNKS if lean else None
        self.uplink = BandwidthProcess(
            rng,
            mean_rate=profile.up_mbps * MBPS,
            volatility=profile.volatility,
            ar_coefficient=profile.ar_coefficient,
            epoch=profile.epoch_seconds,
            fade_probability=profile.fade_probability,
            fade_depth=profile.fade_depth,
            diurnal_amplitude=profile.diurnal_amplitude,
            window_chunks=window,
        )
        self.downlink = BandwidthProcess(
            rng,
            mean_rate=profile.down_mbps * MBPS,
            volatility=profile.volatility,
            ar_coefficient=profile.ar_coefficient,
            epoch=profile.epoch_seconds,
            fade_probability=profile.fade_probability,
            fade_depth=profile.fade_depth,
            diurnal_amplitude=profile.diurnal_amplitude,
            window_chunks=window,
        )
        self.latency = LatencyModel(
            rng,
            base_seconds=profile.rtt_seconds,
            jitter=profile.latency_jitter,
        )
        self.failures = FailureModel(
            rng,
            cloud_id=cloud_id,
            base_rate=profile.failure_rate,
            stress=stress,
        )
