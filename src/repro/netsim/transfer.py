"""Fluid-flow simulation of concurrent block transfers on one link.

One :class:`TransferEngine` models a single direction (upload *or*
download) of one client's path to one cloud.  Each active transfer
progresses at the link's current per-connection rate; when more
transfers are active than the link's useful parallelism
(``max_parallel``, the paper uses up to 5 connections per cloud), the
aggregate capacity ``rate * max_parallel`` is shared equally.

The engine advances transfer progress lazily between *decision points*:
a transfer starting or finishing, or a bandwidth epoch boundary.  At
each decision point it recomputes the earliest next completion and arms
a single timer, giving O(active) work per event and exact completion
times for piecewise-constant rates.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..obs import TRACE
from ..obs.tracer import ctx_attrs as _ctx_attrs
from ..simkernel import Event, Simulator

__all__ = ["TransferEngine", "Transfer", "SharedNic"]

_EPSILON_BYTES = 1e-6

#: Epoch boundaries one analytic fast-forward walk may plan past before
#: realizing a live timer anyway (bounds plan memory; a fault-free
#: transfer idling across more boundaries simply re-plans from there).
_FF_MAX_EPOCHS = 512


class Transfer:
    """One in-flight transfer: bookkeeping plus its completion event."""

    __slots__ = (
        "nbytes", "remaining", "event", "started_at", "finished_at", "span",
    )

    def __init__(self, sim: Simulator, nbytes: float):
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.event = Event(sim)
        self.started_at = sim.now
        self.finished_at: Optional[float] = None
        # Trace span for this flow; None unless the owning engine is
        # labelled with a trace track and tracing is enabled.
        self.span = None

    @property
    def duration(self) -> float:
        """Wall (virtual) time the transfer took; finished transfers only."""
        if self.finished_at is None:
            raise RuntimeError("transfer not finished")
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Average bytes/second achieved, for in-channel probing."""
        duration = self.duration
        return self.nbytes / duration if duration > 0 else math.inf


class SharedNic:
    """A client-side aggregate bandwidth cap shared by several engines.

    Models the host NIC (or an ISP plan): the paper's rented EC2 VMs
    capped downloads at 40 Mbps *across all clouds combined*, which is
    what limited UniDrive's download-side gains (§7.2).  When the summed
    demand of all attached engines exceeds ``capacity``, every engine's
    per-connection rate is scaled down proportionally (fluid max-min
    with equal weights).
    """

    def __init__(self, capacity: float):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.engines: List["TransferEngine"] = []

    def attach(self, engine: "TransferEngine") -> None:
        self.engines.append(engine)
        engine.nic = self

    def demand(self) -> float:
        """Aggregate unconstrained demand of all attached engines."""
        total = 0.0
        for engine in self.engines:
            n = engine.active_count
            if n == 0:
                continue
            rate = engine.bandwidth.rate_at(engine.sim.now)
            total += rate * min(n, engine.max_parallel)
        return total

    def scale(self) -> float:
        """Current throttling factor in (0, 1]."""
        demand = self.demand()
        if demand <= self.capacity:
            return 1.0
        return self.capacity / demand

    def poke(self, source: "TransferEngine") -> None:
        """An engine's membership changed: re-plan the siblings."""
        for engine in self.engines:
            if engine is not source and engine._active:
                engine._advance()
                engine._reschedule(notify_nic=False)


class TransferEngine:
    """Shares one link's capacity among concurrent transfers."""

    def __init__(self, sim: Simulator, bandwidth, max_parallel: int = 5,
                 nic: "SharedNic" = None, trace_track: Optional[str] = None,
                 trace_name: str = "flow", fast_forward: bool = True):
        if max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")
        self.sim = sim
        self.bandwidth = bandwidth
        self.max_parallel = max_parallel
        self.nic = None
        #: When set (e.g. to a cloud id), each transfer on this engine
        #: records a ``trace_name`` span on that track while tracing is
        #: enabled.  Unlabelled engines never touch the tracer.
        self.trace_track = trace_track
        self.trace_name = trace_name
        self._active: List[Transfer] = []
        self._last_update = sim.now
        # Reusable timer: one bound callable for the engine's lifetime,
        # scheduled directly via ``sim.call_later`` (no Timeout event,
        # no per-decision lambda).  ``_timer_deadline`` is the virtual
        # time the *live* timer is armed for; superseded heap entries
        # fire at a different time and no-op.  NaN means "no live
        # timer" (it compares unequal to every time).
        self._fire = self._on_timer
        self._timer_deadline = math.nan
        #: Per-connection rate in effect for the current interval;
        #: cached so progress accounting matches exactly what was
        #: planned, even when a shared NIC rescales rates mid-flight.
        self._rate_in_effect = 0.0
        self.bytes_completed = 0.0
        self.transfers_completed = 0
        #: Analytic fast-forward over fault-free epoch boundaries: when
        #: no shared NIC couples this engine to siblings, the rate is a
        #: pure function of virtual time, so boundaries where nothing
        #: completes are *planned* arithmetically (see
        #: :meth:`_plan_ahead`) instead of realized as timer events.
        #: Bit-identical to event-by-event advancement by construction;
        #: only ``sim.steps`` differs.  Settable for A/B testing.
        self.fast_forward = fast_forward
        # Planned intermediate boundaries between the last decision
        # point and the live deadline, as (time, progressed, rate)
        # triples; replayed onto real transfers by the next _advance /
        # _on_timer, discarded by the next _reschedule.
        self._plan: Optional[list] = None
        self._plan_pos = 0
        if nic is not None:
            nic.attach(self)

    # -- public API ------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def per_connection_rate(self) -> float:
        """Current rate each active transfer receives, bytes/second."""
        rate = self.bandwidth.rate_at(self.sim.now)
        n = len(self._active)
        if n > self.max_parallel:
            rate = rate * self.max_parallel / n
        if self.nic is not None:
            rate *= self.nic.scale()
        return rate

    def start(self, nbytes: float, ctx=None) -> Transfer:
        """Begin transferring ``nbytes``; ``transfer.event`` fires at completion.

        Zero-byte transfers complete immediately (a control request's
        payload time is dominated by latency, handled elsewhere).
        ``ctx`` is an optional ``(trace_id, parent sid)`` correlation
        pair stamped onto the flow span; it never affects timing.
        """
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        transfer = Transfer(self.sim, nbytes)
        if nbytes == 0:
            transfer.finished_at = self.sim.now
            transfer.event.succeed(transfer)
            return transfer
        if TRACE.enabled and self.trace_track is not None:
            sid = TRACE.tracer.next_id()
            transfer.span = TRACE.begin(
                self.trace_name, t=self.sim.now, track=self.trace_track,
                bytes=transfer.nbytes, **_ctx_attrs(ctx, sid),
            )
        self._advance()
        self._active.append(transfer)
        self._reschedule()
        if self.nic is not None:
            self.nic.poke(self)
        return transfer

    def cancel(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer; its event fires with CancelledError."""
        if transfer in self._active:
            self._advance()
            self._active.remove(transfer)
            if transfer.span is not None:
                transfer.span.finish(self.sim.now, cancelled=True)
                transfer.span = None
            transfer.event.fail(TransferCancelled())
            transfer.event.defused = True
            self._reschedule()
            if self.nic is not None:
                self.nic.poke(self)

    # -- internals --------------------------------------------------------

    def _advance(self) -> None:
        """Account progress from the last update to now.

        Progress accrues at the cached rate planned by the previous
        ``_reschedule`` — every event that can change the rate (epoch
        boundary, arrival, completion, NIC rebalance) passes through a
        decision point first, so the interval had exactly that rate.
        """
        now = self.sim.now
        if self._plan is not None:
            self._replay_plan(now)
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        progressed = self._rate_in_effect * elapsed
        for transfer in self._active:
            transfer.remaining -= progressed

    def _replay_plan(self, now: float) -> None:
        """Apply planned epoch-boundary intervals up to ``now``.

        Each entry holds exactly the ``progressed`` bytes and new rate
        the event path's timer would have applied at that boundary, so
        replaying them in order leaves every transfer's ``remaining``,
        ``_last_update`` and ``_rate_in_effect`` bit-identical to
        event-by-event advancement.
        """
        plan = self._plan
        active = self._active
        pos = self._plan_pos
        end = len(plan)
        while pos < end:
            when, progressed, rate = plan[pos]
            if when > now:
                break
            for transfer in active:
                transfer.remaining -= progressed
            self._last_update = when
            self._rate_in_effect = rate
            pos += 1
        self._plan_pos = pos

    def _reschedule(self, notify_nic: bool = True,
                    progressed: float = 0.0) -> None:
        """Complete finished transfers and arm the next wake-up timer.

        This is the substrate's single hottest function (one call per
        decision point), so it trades a little readability for locals
        and a fused scan: one pass over the active list applies the
        elapsed progress (``progressed`` bytes, from the timer path),
        classifies finished transfers *and* finds the shortest
        survivor.
        """
        self._timer_deadline = math.nan  # invalidate any armed timer
        self._plan = None
        active = self._active
        if not active:
            self._rate_in_effect = 0.0
            return
        sim = self.sim
        now = sim.now
        bandwidth = self.bandwidth
        # Per-connection rate, inlined from per_connection_rate().
        rate_now = bandwidth.rate_at(now)
        n = len(active)
        if n > self.max_parallel:
            rate_now = rate_now * self.max_parallel / n
        nic = self.nic
        if nic is not None:
            rate_now *= nic.scale()
        # A transfer whose remainder would complete in less than one
        # representable time step can never make progress (now + delay
        # rounds back to now), so treat it as done.  The threshold is
        # rate-aware: residual float dust scales with the link rate.
        resolution = math.ulp(now if now > 1.0 else 1.0)
        threshold = rate_now * resolution * 8
        if threshold < _EPSILON_BYTES:
            threshold = _EPSILON_BYTES
        finished = None
        shortest = math.inf
        for transfer in active:
            remaining = transfer.remaining - progressed
            transfer.remaining = remaining
            if remaining <= threshold:
                if finished is None:
                    finished = [transfer]
                else:
                    finished.append(transfer)
            elif remaining < shortest:
                shortest = remaining
        if finished:
            for transfer in finished:
                active.remove(transfer)
                transfer.remaining = 0.0
                transfer.finished_at = now
                self.bytes_completed += transfer.nbytes
                self.transfers_completed += 1
                if transfer.span is not None:
                    transfer.span.finish(now)
                    transfer.span = None
                transfer.event.succeed(transfer)
            if notify_nic and nic is not None:
                nic.poke(self)
            if not active:
                self._rate_in_effect = 0.0
                return
            # Completions change this engine's parallelism (and, through
            # a shared NIC, the whole host's demand); otherwise the rate
            # computed for the threshold is still exact.
            rate = self.per_connection_rate()
        else:
            rate = rate_now
        self._rate_in_effect = rate
        completion_delay = shortest / rate if rate > 0 else math.inf
        epoch_delay = bandwidth.next_change_after(now) - now
        if completion_delay < epoch_delay:
            delay = completion_delay
        else:
            delay = epoch_delay
            if (
                self.fast_forward
                and nic is None
                and math.isfinite(epoch_delay)
            ):
                # The next event is a fault-free epoch boundary: walk
                # the boundaries arithmetically and arm one timer at
                # the first instant where something actually happens.
                self._plan_ahead(now, rate, shortest, resolution, delay)
                return
        if not math.isfinite(delay):  # pragma: no cover - defensive
            raise RuntimeError("transfer can never complete (zero rate)")
        # Guarantee the timer lands strictly after `now` in float time.
        min_delay = resolution * 2
        if delay < min_delay:
            delay = min_delay
        self._timer_deadline = sim.call_later(delay, self._fire)

    def _plan_ahead(self, t: float, rate: float, shortest: float,
                    resolution: float, delay: float) -> None:
        """Plan past epoch boundaries where no transfer completes.

        Replicates — operation for operation, on scalars — the float
        arithmetic the event path performs at each boundary: the
        ``now + delay`` deadline add, the progress subtraction, the
        rate/threshold computation, the next-delay choice.  Uniform
        progress preserves order among survivors (IEEE subtraction is
        weakly monotone), so tracking the exact minimum ``shortest``
        suffices to detect the first completion.  Only valid when the
        rate is a pure function of virtual time: no shared NIC, and
        any start/cancel is a decision point that discards the plan.
        """
        bandwidth = self.bandwidth
        mp = self.max_parallel
        n = len(self._active)
        plan = []
        rem = shortest
        while True:
            min_delay = resolution * 2
            if delay < min_delay:
                delay = min_delay
            when = t + delay  # the exact add call_later would perform
            # -- _on_timer + _reschedule arithmetic at `when` ----------
            progressed = rate * (when - t)
            rate_now = bandwidth.rate_at(when)
            if n > mp:
                rate_now = rate_now * mp / n
            resolution = math.ulp(when if when > 1.0 else 1.0)
            threshold = rate_now * resolution * 8
            if threshold < _EPSILON_BYTES:
                threshold = _EPSILON_BYTES
            rem = rem - progressed
            if rem <= threshold or len(plan) >= _FF_MAX_EPOCHS:
                # A completion lands on this boundary (or the walk
                # budget is spent): realize it with a live timer.
                break
            plan.append((when, progressed, rate_now))
            t = when
            rate = rate_now
            completion_delay = rem / rate
            epoch_delay = bandwidth.next_change_after(t) - t
            if completion_delay < epoch_delay:
                # Mid-epoch completion: the next event is real.
                delay = completion_delay
                min_delay = resolution * 2
                if delay < min_delay:
                    delay = min_delay
                when = t + delay
                break
            delay = epoch_delay
        if plan:
            self._plan = plan
            self._plan_pos = 0
        self._timer_deadline = self.sim.call_at(when, self._fire)

    def _on_timer(self) -> None:
        # Exactly one deadline is live at a time; a heap entry from a
        # superseded decision point fires at some other instant (every
        # re-arm lands strictly later than its decision point) and is
        # dropped here.  NaN compares unequal to every ``now``.
        now = self.sim.now
        if now != self._timer_deadline:
            return  # superseded by a newer decision point
        if self._plan is not None:
            # Fast-forwarded deadline: the skipped boundaries are
            # applied now, in order, before the final interval below.
            self._replay_plan(now)
        # _advance() folded in: progress is applied inside the
        # _reschedule scan (same subtract-then-compare order).
        elapsed = now - self._last_update
        self._last_update = now
        progressed = (
            self._rate_in_effect * elapsed if elapsed > 0.0 else 0.0
        )
        self._reschedule(progressed=progressed)


class TransferCancelled(Exception):
    """Outcome of a transfer aborted via :meth:`TransferEngine.cancel`."""


__all__.append("TransferCancelled")
