"""Network condition simulation: bandwidth, latency, failures, transfers."""

from .bandwidth import (
    MBPS,
    BandwidthProcess,
    ConstantBandwidth,
    ScalarBandwidthProcess,
)
from .failures import FailureModel, StressProcess, interval_failure_indicators
from .latency import LatencyModel
from .profiles import LinkConditions, LinkProfile
from .transfer import SharedNic, Transfer, TransferCancelled, TransferEngine

__all__ = [
    "BandwidthProcess",
    "ConstantBandwidth",
    "FailureModel",
    "LatencyModel",
    "LinkConditions",
    "LinkProfile",
    "MBPS",
    "ScalarBandwidthProcess",
    "SharedNic",
    "StressProcess",
    "Transfer",
    "TransferCancelled",
    "TransferEngine",
    "interval_failure_indicators",
]
