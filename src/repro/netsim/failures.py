"""Transient request failures with the paper's statistical structure.

Section 3.2 of the paper reports two findings this module reproduces:

1. **Negative cross-cloud correlation** (Table 1): different CCSs rarely
   fail at the same time.  We model a global *stress token* — a
   continuous-time Markov process in which at most one cloud is
   "stressed" at any moment.  While a cloud holds the token its requests
   fail at an elevated rate; everyone else is healthy.  Because stress
   periods are mutually exclusive by construction, per-interval failure
   indicators across clouds are negatively correlated.

2. **Size-dependent failures** (Figure 4): requests below ~2 MB show no
   size effect; larger payloads fail increasingly often (longer
   transfers expose more fault windows).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["StressProcess", "FailureModel"]

_MB = 1024 * 1024


class StressProcess:
    """At most one cloud is stressed at a time (mutual exclusion).

    The process alternates between *calm* intervals (no cloud stressed)
    and *stress* intervals during which one cloud, chosen according to
    ``weights``, is degraded.  Interval lengths are exponential.  The
    timeline is generated lazily and cached, so lookups are O(log n) and
    deterministic in the seed.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        cloud_ids: Sequence[str],
        mean_calm: float = 5400.0,
        mean_stress: float = 900.0,
        weights: Optional[Sequence[float]] = None,
    ):
        if not cloud_ids:
            raise ValueError("need at least one cloud id")
        if mean_calm <= 0 or mean_stress <= 0:
            raise ValueError("interval means must be positive")
        self.cloud_ids = list(cloud_ids)
        self.mean_calm = mean_calm
        self.mean_stress = mean_stress
        if weights is None:
            probabilities = np.full(len(self.cloud_ids), 1.0 / len(self.cloud_ids))
        else:
            weights = np.asarray(weights, dtype=float)
            if len(weights) != len(self.cloud_ids) or weights.sum() <= 0:
                raise ValueError("weights must match cloud_ids and be positive")
            probabilities = weights / weights.sum()
        self._probabilities = probabilities
        self._rng = rng
        # Timeline of intervals: _starts[i] begins state _states[i].
        self._starts: List[float] = [0.0]
        self._states: List[Optional[str]] = [None]
        self._horizon = 0.0
        self._extend(3600.0)

    def _extend(self, until: float) -> None:
        while self._horizon <= until:
            current = self._states[-1]
            if current is None:
                duration = self._rng.exponential(self.mean_calm)
                nxt = self.cloud_ids[
                    int(self._rng.choice(len(self.cloud_ids), p=self._probabilities))
                ]
            else:
                duration = self._rng.exponential(self.mean_stress)
                nxt = None
            self._horizon += duration
            self._starts.append(self._horizon)
            self._states.append(nxt)

    def stressed_cloud_at(self, t: float) -> Optional[str]:
        """Which cloud (if any) is stressed at time ``t``."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        self._extend(t)
        index = int(np.searchsorted(self._starts, t, side="right")) - 1
        return self._states[index]


class FailureModel:
    """Per-request failure decisions for one (client, cloud) link."""

    STRESS_FACTOR = 30.0
    SIZE_KNEE_BYTES = 2 * _MB
    SIZE_SLOPE_PER_MB = 0.35  # relative increase per MB past the knee
    MAX_PROBABILITY = 0.95

    def __init__(
        self,
        rng: np.random.Generator,
        cloud_id: str,
        base_rate: float,
        stress: Optional[StressProcess] = None,
    ):
        if not 0 <= base_rate < 1:
            raise ValueError(f"base_rate must be in [0, 1), got {base_rate}")
        self.cloud_id = cloud_id
        self.base_rate = base_rate
        self.stress = stress
        self._rng = rng

    def failure_probability(self, t: float, nbytes: int) -> float:
        """Probability that a request of ``nbytes`` at time ``t`` fails."""
        probability = self.base_rate
        if self.stress is not None and (
            self.stress.stressed_cloud_at(t) == self.cloud_id
        ):
            probability *= self.STRESS_FACTOR
        if nbytes > self.SIZE_KNEE_BYTES:
            extra_mb = (nbytes - self.SIZE_KNEE_BYTES) / _MB
            probability *= 1.0 + self.SIZE_SLOPE_PER_MB * extra_mb
        return min(probability, self.MAX_PROBABILITY)

    def should_fail(self, t: float, nbytes: int) -> bool:
        """Sample a failure decision for one request."""
        return bool(self._rng.random() < self.failure_probability(t, nbytes))


def interval_failure_indicators(
    stress: StressProcess,
    cloud_ids: Sequence[str],
    interval: float,
    count: int,
) -> Dict[str, np.ndarray]:
    """Binary 'was stressed during interval i' series for each cloud.

    Helper used by tests and the Table 1 benchmark to show the designed
    negative correlation without running full transfers.
    """
    out = {cid: np.zeros(count, dtype=int) for cid in cloud_ids}
    for i in range(count):
        midpoint = (i + 0.5) * interval
        stressed = stress.stressed_cloud_at(midpoint)
        if stressed in out:
            out[stressed][i] = 1
    return out


__all__.append("interval_failure_indicators")
