"""Stochastic per-connection bandwidth processes.

The paper's measurement study (§3.2) found CCS bandwidth to be

* spatially diverse — up to 60x between clouds at one location,
* temporally volatile — 17x max/min within a single day,
* unpredictable — no usable diurnal pattern, independent across clouds.

We model the per-connection rate of one (client-location, cloud,
direction) link as a piecewise-constant process over fixed epochs:

``rate(t) = mean * exp(x_e - sigma^2/2) * diurnal(t) / fade_e``

where ``x_e`` is a stationary AR(1) series in log space (stationary
standard deviation ``volatility``) and ``fade_e`` is an occasional deep
fade (heavy tail).  Epoch values are generated lazily and cached, so the
process is deterministic in its seed yet supports month-long campaigns.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

__all__ = ["BandwidthProcess", "MBPS"]

MBPS = 1_000_000 / 8.0  # bytes per second in one megabit per second


class BandwidthProcess:
    """Lazily-sampled piecewise-constant bandwidth, in bytes/second."""

    def __init__(
        self,
        rng: np.random.Generator,
        mean_rate: float,
        volatility: float = 0.5,
        ar_coefficient: float = 0.8,
        epoch: float = 60.0,
        fade_probability: float = 0.02,
        fade_depth: float = 8.0,
        diurnal_amplitude: float = 0.0,
        diurnal_period: float = 86400.0,
    ):
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate}")
        if not 0 <= ar_coefficient < 1:
            raise ValueError("ar_coefficient must be in [0, 1)")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0 <= diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        self.mean_rate = mean_rate
        self.volatility = volatility
        self.ar = ar_coefficient
        self.epoch = epoch
        self.fade_probability = fade_probability
        self.fade_depth = fade_depth
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self._rng = rng
        self._phase = rng.uniform(0, 2 * math.pi)
        self._innovation_scale = volatility * math.sqrt(1 - ar_coefficient**2)
        self._multipliers: List[float] = []
        self._x_state: float = 0.0

    def _extend_to(self, index: int) -> None:
        while len(self._multipliers) <= index:
            if self._multipliers:
                x = self.ar * self._x_state + self._rng.normal(
                    0.0, self._innovation_scale
                )
            else:
                x = self._rng.normal(0.0, self.volatility)
            self._x_state = x
            multiplier = math.exp(x - self.volatility**2 / 2)
            if self._rng.random() < self.fade_probability:
                multiplier /= self._rng.uniform(2.0, self.fade_depth)
            self._multipliers.append(multiplier)

    def rate_at(self, t: float) -> float:
        """Per-connection rate in bytes/second at virtual time ``t``."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        index = int(t // self.epoch)
        self._extend_to(index)
        rate = self.mean_rate * self._multipliers[index]
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2 * math.pi * t / self.diurnal_period + self._phase
            )
        return max(rate, self.mean_rate * 1e-3)

    def next_change_after(self, t: float) -> float:
        """Next time the piecewise-constant rate may change."""
        return (int(t // self.epoch) + 1) * self.epoch


class ConstantBandwidth:
    """A degenerate process with a fixed rate (for tests/instant clouds)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def rate_at(self, t: float) -> float:
        return self.rate

    def next_change_after(self, t: float) -> float:
        return math.inf


__all__.append("ConstantBandwidth")
