"""Stochastic per-connection bandwidth processes.

The paper's measurement study (§3.2) found CCS bandwidth to be

* spatially diverse — up to 60x between clouds at one location,
* temporally volatile — 17x max/min within a single day,
* unpredictable — no usable diurnal pattern, independent across clouds.

We model the per-connection rate of one (client-location, cloud,
direction) link as a piecewise-constant process over fixed epochs:

``rate(t) = mean * exp(x_e - sigma^2/2) * diurnal(t) / fade_e``

where ``x_e`` is a stationary AR(1) series in log space (stationary
standard deviation ``volatility``) and ``fade_e`` is an occasional deep
fade (heavy tail).

Epochs are generated lazily in numpy chunks of :data:`CHUNK_EPOCHS`
multipliers at a time: the chunk's normal innovations, fade coin-flips
and fade depths are drawn as three bulk array draws, the AR(1)
recursion runs array-wise, and the resulting multipliers are cached in
one flat array — so ``rate_at`` / ``next_change_after`` are O(1) array
reads and a month-long campaign costs ~10 chunk generations per link
instead of ~43,200 scalar rng round-trips.

:class:`ScalarBandwidthProcess` retains the per-epoch scalar sampler
over the *same* draw scheme.  It is the pinned reference for the
vectorized path (property-tested for equivalence) and the "before" twin
for the substrate benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

try:  # scipy's lfilter runs the AR(1) scan in C with the exact same
    # multiply-add sequence as the scalar recursion (bit-identical).
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover - scipy is an optional speedup
    _lfilter = None

__all__ = [
    "BandwidthProcess",
    "ScalarBandwidthProcess",
    "ConstantBandwidth",
    "MBPS",
    "CHUNK_EPOCHS",
]

MBPS = 1_000_000 / 8.0  # bytes per second in one megabit per second

#: Epochs generated per bulk draw (issue bar: >= 4096).
CHUNK_EPOCHS = 4096


class BandwidthProcess:
    """Lazily-sampled piecewise-constant bandwidth, in bytes/second.

    Epoch multipliers are produced chunk-wise; see the module docstring
    for the draw scheme.  Within one chunk the rng is consumed as three
    bulk draws (innovations, fade coins, fade depths), so scalar and
    vectorized samplers over the same seed agree epoch for epoch.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        mean_rate: float,
        volatility: float = 0.5,
        ar_coefficient: float = 0.8,
        epoch: float = 60.0,
        fade_probability: float = 0.02,
        fade_depth: float = 8.0,
        diurnal_amplitude: float = 0.0,
        diurnal_period: float = 86400.0,
        chunk_epochs: int = CHUNK_EPOCHS,
        window_chunks: int = None,
    ):
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {mean_rate}")
        if not 0 <= ar_coefficient < 1:
            raise ValueError("ar_coefficient must be in [0, 1)")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        if not 0 <= diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if chunk_epochs < 1:
            raise ValueError("chunk_epochs must be positive")
        if window_chunks is not None and window_chunks < 1:
            raise ValueError("window_chunks must be positive")
        self.mean_rate = mean_rate
        self.volatility = volatility
        self.ar = ar_coefficient
        self.epoch = epoch
        self.fade_probability = fade_probability
        self.fade_depth = fade_depth
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period = diurnal_period
        self.chunk_epochs = chunk_epochs
        self._rng = rng
        self._phase = rng.uniform(0, 2 * math.pi)
        self._innovation_scale = volatility * math.sqrt(1 - ar_coefficient**2)
        self._floor = mean_rate * 1e-3
        # Materialized epoch multipliers.  Generated as numpy chunks but
        # stored as a plain float list: `rate_at` is a scalar hot path
        # (one lookup per transfer-engine decision point), and list
        # indexing returns an unboxed float where ndarray indexing
        # allocates an np.float64 wrapper per call.
        self._multipliers: list = []
        self._count = 0  # epochs generated so far
        self._x_state = 0.0  # AR(1) carry into the next chunk
        # Lean retention for fleet-scale runs: keep only the newest
        # ``window_chunks`` multiplier chunks (as compact float64
        # arrays) instead of materializing an ever-growing float list.
        # The rng consumption and multiplier *values* are identical to
        # unbounded mode — only the storage policy differs; querying a
        # time whose chunk was already evicted raises (engines query
        # monotonically, so this never happens in normal operation).
        self._window = window_chunks
        self._chunks: dict = {} if window_chunks is not None else None

    # -- chunked epoch generation ---------------------------------------

    def _draw_chunk(self):
        """One chunk's worth of raw rng material, in a fixed order."""
        size = self.chunk_epochs
        innovations = self._rng.standard_normal(size)
        fade_coins = self._rng.random(size)
        fade_depths = self._rng.uniform(2.0, self.fade_depth, size)
        return innovations, fade_coins, fade_depths

    def _chunk_multipliers(self, innovations, fade_coins, fade_depths):
        """Vectorized AR(1) recursion + fades over one chunk's draws."""
        shocks = self._innovation_scale * innovations
        first = self._count == 0
        if first:
            # Epoch 0 starts the series at its stationary distribution.
            shocks[0] = self.volatility * innovations[0]
        x = _ar1_scan(self.ar, shocks, 0.0 if first else self._x_state)
        multipliers = np.exp(x - self.volatility**2 / 2)
        faded = fade_coins < self.fade_probability
        if faded.any():
            multipliers[faded] /= fade_depths[faded]
        return multipliers, float(x[-1])

    def _extend_to(self, index: int) -> None:
        while self._count <= index:
            multipliers, self._x_state = self._chunk_multipliers(
                *self._draw_chunk()
            )
            if self._window is None:
                self._multipliers.extend(multipliers.tolist())
                self._count = len(self._multipliers)
            else:
                chunk_index = self._count // self.chunk_epochs
                self._chunks[chunk_index] = multipliers
                self._count += len(multipliers)
                evicted = chunk_index - self._window
                if evicted in self._chunks:
                    del self._chunks[evicted]

    # -- queries ---------------------------------------------------------

    def rate_at(self, t: float) -> float:
        """Per-connection rate in bytes/second at virtual time ``t``."""
        if t < 0:
            raise ValueError(f"negative time {t}")
        index = int(t // self.epoch)
        if index >= self._count:
            self._extend_to(index)
        if self._window is None:
            multiplier = self._multipliers[index]
        else:
            chunk = self._chunks.get(index // self.chunk_epochs)
            if chunk is None:
                raise RuntimeError(
                    f"bandwidth epoch {index} evicted from the "
                    f"{self._window}-chunk retention window"
                )
            multiplier = float(chunk[index % self.chunk_epochs])
        rate = self.mean_rate * multiplier
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2 * math.pi * t / self.diurnal_period + self._phase
            )
        floor = self._floor
        return rate if rate > floor else floor

    def next_change_after(self, t: float) -> float:
        """Next time the piecewise-constant rate may change."""
        return (int(t // self.epoch) + 1) * self.epoch

    def scale(self, factor: float) -> None:
        """Multiply the mean rate (and its floor) by ``factor`` from now on.

        The fault injector's slow-cloud windows use this to degrade a
        link without touching the multiplier stream: rng consumption
        and epoch boundaries are unchanged, so scaling down and back
        up restores the exact original rate trajectory.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.mean_rate *= factor
        self._floor *= factor


class ScalarBandwidthProcess(BandwidthProcess):
    """The retained scalar sampler: one Python-loop epoch at a time.

    Consumes the rng identically to :class:`BandwidthProcess` (same
    bulk draws per chunk) but runs the AR(1) recursion and the
    exp/fade arithmetic as per-epoch scalar operations — the reference
    implementation the vectorized path is property-tested against, and
    the "before" side of the ``bandwidth_epochs`` benchmark.
    """

    def _chunk_multipliers(self, innovations, fade_coins, fade_depths):
        multipliers = np.empty(len(innovations), dtype=np.float64)
        x = self._x_state
        offset = self.volatility**2 / 2
        for i in range(len(innovations)):
            if self._count == 0 and i == 0:
                x = self.volatility * float(innovations[0])
            else:
                x = self.ar * x + self._innovation_scale * float(
                    innovations[i]
                )
            multiplier = math.exp(x - offset)
            if float(fade_coins[i]) < self.fade_probability:
                multiplier /= float(fade_depths[i])
            multipliers[i] = multiplier
        return multipliers, x


def _ar1_scan(ar: float, shocks: np.ndarray, x0: float) -> np.ndarray:
    """``x[i] = ar * x[i-1] + shocks[i]`` array-wise, seeded by ``x0``.

    Uses :func:`scipy.signal.lfilter` when available (a C loop with the
    same multiply-add order as the scalar recursion, so results are
    bit-identical); otherwise falls back to a Python loop over the
    chunk — still one loop per 4096 epochs, with the exp/fade stages
    vectorized either way.
    """
    if _lfilter is not None:
        out, _state = _lfilter([1.0], [1.0, -ar], shocks, zi=[ar * x0])
        return out
    out = np.empty_like(shocks)
    x = x0
    for i, shock in enumerate(shocks):
        x = ar * x + shock
        out[i] = x
    return out


class ConstantBandwidth:
    """A degenerate process with a fixed rate (for tests/instant clouds)."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = rate

    def rate_at(self, t: float) -> float:
        return self.rate

    def next_change_after(self, t: float) -> float:
        return math.inf
