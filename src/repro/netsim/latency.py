"""Per-request API latency.

Every RESTful call pays a setup cost (TCP/TLS handshakes, HTTP headers,
server-side processing) before any payload bytes flow.  The paper's
trial data shows this cost dominating for files below ~100 KB
(§7.3, Figure 15), which is exactly the behaviour this model produces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LatencyModel"]


class LatencyModel:
    """Lognormal request-setup latency around a base round-trip time."""

    def __init__(self, rng: np.random.Generator, base_seconds: float,
                 jitter: float = 0.35):
        if base_seconds <= 0:
            raise ValueError(f"base_seconds must be positive, got {base_seconds}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        self.base_seconds = base_seconds
        self.jitter = jitter
        self._rng = rng

    def sample(self) -> float:
        """Draw one request's setup latency in seconds."""
        if self.jitter == 0:
            return self.base_seconds
        factor = float(
            np.exp(self._rng.normal(0.0, self.jitter) - self.jitter**2 / 2)
        )
        return self.base_seconds * factor
