"""Metadata encryption substrate: DES (FIPS 46-3) with CBC mode."""

from .des import BLOCK_SIZE, DES
from .modes import PaddingError, decrypt_cbc, encrypt_cbc, pad, unpad

__all__ = [
    "BLOCK_SIZE",
    "DES",
    "PaddingError",
    "decrypt_cbc",
    "encrypt_cbc",
    "pad",
    "unpad",
]
