"""The DES block cipher (FIPS 46-3), implemented from scratch.

The UniDrive paper (§4) encrypts the serialized ``SyncFolderImage`` with
DES before replicating it to the clouds, so the metadata is opaque to any
single provider.  This module provides the raw 64-bit block primitive;
:mod:`repro.crypto.modes` layers CBC and padding on top.

DES is implemented the textbook way — initial/final permutations, 16
Feistel rounds with expansion, S-boxes and the P permutation, and the
PC-1/PC-2 key schedule.  It is validated against published NIST test
vectors in the test suite.  (DES is *not* a modern cipher; it is used
here because it is what the paper names.)
"""

from __future__ import annotations

from typing import List

__all__ = ["DES", "BLOCK_SIZE"]

BLOCK_SIZE = 8

# Initial permutation (IP); 1-based bit positions from the standard.
_IP = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
]

# Final permutation (IP^-1).
_FP = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
]

# Expansion from 32 to 48 bits.
_E = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]

# Permutation applied to the S-box output.
_P = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]

# The eight S-boxes, each 4 rows x 16 columns.
_SBOXES = [
    [
        [14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7],
        [0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8],
        [4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0],
        [15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13],
    ],
    [
        [15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10],
        [3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5],
        [0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15],
        [13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9],
    ],
    [
        [10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8],
        [13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1],
        [13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7],
        [1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12],
    ],
    [
        [7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15],
        [13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9],
        [10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4],
        [3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14],
    ],
    [
        [2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9],
        [14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6],
        [4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14],
        [11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3],
    ],
    [
        [12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11],
        [10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8],
        [9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6],
        [4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13],
    ],
    [
        [4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1],
        [13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6],
        [1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2],
        [6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12],
    ],
    [
        [13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7],
        [1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2],
        [7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8],
        [2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11],
    ],
]

# Key schedule: PC-1 (64 -> 56 bits) and PC-2 (56 -> 48 bits).
_PC1 = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
]

_PC2 = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
]

_SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]


def _permute(value: int, width: int, table: List[int]) -> int:
    """Apply a DES bit permutation (1-based, MSB-first positions)."""
    out = 0
    for position in table:
        out = (out << 1) | ((value >> (width - position)) & 1)
    return out


def _rotate28(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (28 - amount))) & 0x0FFFFFFF


# -- precomputed lookup tables for the block hot path ---------------------
#
# The straightforward implementation above walks a permutation table
# bit-by-bit: 34 `_permute` calls per block (IP, FP, and E+P in each of
# the 16 rounds) dominate every metadata encrypt/decrypt.  All of DES's
# permutations are linear over OR of disjoint bit sets, so each one
# collapses into byte- (or 6-bit-) indexed table lookups built *from*
# the reference `_permute` at import time — the tables are derived from
# the same FIPS constants, and the NIST-vector tests pin the outputs as
# bit-identical.
#
# * ``_SP[box][chunk]`` fuses S-box ``box`` with the P permutation: the
#   P-image of that box's 4-bit output placed in its lane.  A Feistel
#   round becomes 8 lookups XORed together.
# * ``_IP_TAB[i][byte]`` / ``_FP_TAB[i][byte]`` give byte ``i``'s
#   contribution to the initial/final permutation of a 64-bit block.
# * The expansion E needs no table at all: its 6-bit chunks are sliding
#   windows over the 32-bit half extended by one wraparound bit on each
#   side (built inline in ``_feistel_fast``).

_SP: List[List[int]] = []
for _box in range(8):
    _lane = []
    for _chunk in range(64):
        _row = ((_chunk >> 4) & 0x2) | (_chunk & 0x1)
        _col = (_chunk >> 1) & 0xF
        _out = _SBOXES[_box][_row][_col] << (28 - 4 * _box)
        _lane.append(_permute(_out, 32, _P))
    _SP.append(_lane)

_IP_TAB: List[List[int]] = [
    [_permute(_byte << (56 - 8 * _i), 64, _IP) for _byte in range(256)]
    for _i in range(8)
]
_FP_TAB: List[List[int]] = [
    [_permute(_byte << (56 - 8 * _i), 64, _FP) for _byte in range(256)]
    for _i in range(8)
]


def _permute64_tab(value: int, tables: List[List[int]]) -> int:
    return (
        tables[0][(value >> 56) & 0xFF]
        | tables[1][(value >> 48) & 0xFF]
        | tables[2][(value >> 40) & 0xFF]
        | tables[3][(value >> 32) & 0xFF]
        | tables[4][(value >> 24) & 0xFF]
        | tables[5][(value >> 16) & 0xFF]
        | tables[6][(value >> 8) & 0xFF]
        | tables[7][value & 0xFF]
    )


class DES:
    """A DES instance bound to one 8-byte key.

    Parity bits in the key (the least-significant bit of every byte) are
    ignored, per the standard.
    """

    def __init__(self, key: bytes):
        if len(key) != 8:
            raise ValueError(f"DES key must be 8 bytes, got {len(key)}")
        self.key = bytes(key)
        self._subkeys = self._key_schedule(int.from_bytes(key, "big"))
        # Each 48-bit subkey split into the 8 six-bit chunks consumed by
        # the S-boxes, so the round loop never re-slices them.
        self._subkeys6 = [
            tuple((sk >> (42 - 6 * box)) & 0x3F for box in range(8))
            for sk in self._subkeys
        ]
        self._subkeys6_rev = self._subkeys6[::-1]

    @staticmethod
    def _key_schedule(key64: int) -> List[int]:
        permuted = _permute(key64, 64, _PC1)
        c = (permuted >> 28) & 0x0FFFFFFF
        d = permuted & 0x0FFFFFFF
        subkeys = []
        for shift in _SHIFTS:
            c = _rotate28(c, shift)
            d = _rotate28(d, shift)
            subkeys.append(_permute((c << 28) | d, 56, _PC2))
        return subkeys

    @staticmethod
    def _feistel(half: int, subkey: int) -> int:
        # Reference (table-free) round function; the hot path below inlines
        # the equivalent combined-SP lookups.
        expanded = _permute(half, 32, _E) ^ subkey
        out = 0
        for box in range(8):
            chunk = (expanded >> (42 - 6 * box)) & 0x3F
            row = ((chunk >> 4) & 0x2) | (chunk & 0x1)
            col = (chunk >> 1) & 0xF
            out = (out << 4) | _SBOXES[box][row][col]
        return _permute(out, 32, _P)

    def _crypt_block(self, block64: int, decrypt: bool) -> int:
        value = _permute64_tab(block64, _IP_TAB)
        left = (value >> 32) & 0xFFFFFFFF
        right = value & 0xFFFFFFFF
        keys = self._subkeys6_rev if decrypt else self._subkeys6
        sp0, sp1, sp2, sp3, sp4, sp5, sp6, sp7 = _SP
        for k0, k1, k2, k3, k4, k5, k6, k7 in keys:
            # E(right) as eight overlapping 6-bit windows over ``right``
            # extended by one wraparound bit on each side.
            ext = ((right & 1) << 33) | (right << 1) | (right >> 31)
            f = (
                sp0[((ext >> 28) ^ k0) & 0x3F]
                ^ sp1[((ext >> 24) ^ k1) & 0x3F]
                ^ sp2[((ext >> 20) ^ k2) & 0x3F]
                ^ sp3[((ext >> 16) ^ k3) & 0x3F]
                ^ sp4[((ext >> 12) ^ k4) & 0x3F]
                ^ sp5[((ext >> 8) ^ k5) & 0x3F]
                ^ sp6[((ext >> 4) ^ k6) & 0x3F]
                ^ sp7[(ext ^ k7) & 0x3F]
            )
            left, right = right, left ^ f
        # Halves are swapped before the final permutation.
        return _permute64_tab((right << 32) | left, _FP_TAB)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 8 bytes, got {len(block)}")
        value = int.from_bytes(block, "big")
        return self._crypt_block(value, decrypt=False).to_bytes(8, "big")

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be 8 bytes, got {len(block)}")
        value = int.from_bytes(block, "big")
        return self._crypt_block(value, decrypt=True).to_bytes(8, "big")
