"""CBC mode and PKCS#5 padding over the DES block primitive.

`encrypt_cbc` prepends the IV to the ciphertext so the output is
self-contained — the metadata file stored in the clouds is exactly this
byte string.
"""

from __future__ import annotations

from .des import BLOCK_SIZE, DES

__all__ = [
    "pad",
    "unpad",
    "encrypt_cbc",
    "decrypt_cbc",
    "PaddingError",
]


class PaddingError(ValueError):
    """Raised when ciphertext does not decrypt to valid PKCS#5 padding."""


def pad(data: bytes) -> bytes:
    """Apply PKCS#5 padding up to the 8-byte DES block size."""
    fill = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([fill] * fill)


def unpad(data: bytes) -> bytes:
    """Strip PKCS#5 padding, validating it fully."""
    if not data or len(data) % BLOCK_SIZE != 0:
        raise PaddingError("padded data length must be a positive multiple of 8")
    fill = data[-1]
    if not 1 <= fill <= BLOCK_SIZE:
        raise PaddingError(f"invalid padding byte {fill}")
    if data[-fill:] != bytes([fill] * fill):
        raise PaddingError("corrupt padding")
    return data[:-fill]


def _xor8(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes) -> bytes:
    """DES-CBC encrypt; returns ``iv || ciphertext``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be 8 bytes, got {len(iv)}")
    cipher = DES(key)
    padded = pad(plaintext)
    out = [iv]
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = _xor8(padded[offset:offset + BLOCK_SIZE], previous)
        previous = cipher.encrypt_block(block)
        out.append(previous)
    return b"".join(out)


def decrypt_cbc(key: bytes, blob: bytes) -> bytes:
    """Decrypt ``iv || ciphertext`` produced by :func:`encrypt_cbc`."""
    if len(blob) < 2 * BLOCK_SIZE or len(blob) % BLOCK_SIZE != 0:
        raise PaddingError("ciphertext too short or misaligned")
    cipher = DES(key)
    iv, body = blob[:BLOCK_SIZE], blob[BLOCK_SIZE:]
    out = []
    previous = iv
    for offset in range(0, len(body), BLOCK_SIZE):
        block = body[offset:offset + BLOCK_SIZE]
        out.append(_xor8(cipher.decrypt_block(block), previous))
        previous = block
    return unpad(b"".join(out))
