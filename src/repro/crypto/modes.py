"""CBC mode and PKCS#5 padding over the DES block primitive.

`encrypt_cbc` prepends the IV to the ciphertext so the output is
self-contained — the metadata file stored in the clouds is exactly this
byte string.
"""

from __future__ import annotations

from collections import OrderedDict

from .des import BLOCK_SIZE, DES

__all__ = [
    "pad",
    "unpad",
    "encrypt_cbc",
    "decrypt_cbc",
    "PaddingError",
]


class PaddingError(ValueError):
    """Raised when ciphertext does not decrypt to valid PKCS#5 padding."""


def pad(data: bytes) -> bytes:
    """Apply PKCS#5 padding up to the 8-byte DES block size."""
    fill = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([fill] * fill)


def unpad(data: bytes) -> bytes:
    """Strip PKCS#5 padding, validating it fully."""
    if not data or len(data) % BLOCK_SIZE != 0:
        raise PaddingError("padded data length must be a positive multiple of 8")
    fill = data[-1]
    if not 1 <= fill <= BLOCK_SIZE:
        raise PaddingError(f"invalid padding byte {fill}")
    if data[-fill:] != bytes([fill] * fill):
        raise PaddingError("corrupt padding")
    return data[:-fill]


def _xor8(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


# Key schedules are deterministic per key, and every sync round encrypts
# and decrypts with the same folder key, so cache the DES instances.
_CIPHERS: "OrderedDict[bytes, DES]" = OrderedDict()
_CIPHER_CACHE_MAX = 64

# CBC decryption is a pure function of (key, blob), and the same metadata
# blob is fetched and decrypted by every device sharing a folder — memoize
# the most recent results.  Encryption is not cached: its IV is supplied
# by the caller, and plaintexts rarely repeat.
_PLAINTEXTS: "OrderedDict[tuple, bytes]" = OrderedDict()
_PLAINTEXT_CACHE_MAX = 128


def _cipher(key: bytes) -> DES:
    cached = _CIPHERS.get(key)
    if cached is None:
        cached = _CIPHERS[key] = DES(key)
        if len(_CIPHERS) > _CIPHER_CACHE_MAX:
            _CIPHERS.popitem(last=False)
    else:
        _CIPHERS.move_to_end(key)
    return cached


def encrypt_cbc(key: bytes, plaintext: bytes, iv: bytes) -> bytes:
    """DES-CBC encrypt; returns ``iv || ciphertext``."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be 8 bytes, got {len(iv)}")
    cipher = _cipher(bytes(key))
    crypt = cipher._crypt_block
    padded = pad(plaintext)
    out = [iv]
    previous = int.from_bytes(iv, "big")
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = int.from_bytes(padded[offset:offset + BLOCK_SIZE], "big")
        previous = crypt(block ^ previous, False)
        out.append(previous.to_bytes(BLOCK_SIZE, "big"))
    return b"".join(out)


def decrypt_cbc(key: bytes, blob: bytes) -> bytes:
    """Decrypt ``iv || ciphertext`` produced by :func:`encrypt_cbc`."""
    if len(blob) < 2 * BLOCK_SIZE or len(blob) % BLOCK_SIZE != 0:
        raise PaddingError("ciphertext too short or misaligned")
    memo_key = (bytes(key), bytes(blob))
    cached = _PLAINTEXTS.get(memo_key)
    if cached is not None:
        _PLAINTEXTS.move_to_end(memo_key)
        return cached
    cipher = _cipher(bytes(key))
    crypt = cipher._crypt_block
    body = blob[BLOCK_SIZE:]
    out = []
    previous = int.from_bytes(blob[:BLOCK_SIZE], "big")
    for offset in range(0, len(body), BLOCK_SIZE):
        block = int.from_bytes(body[offset:offset + BLOCK_SIZE], "big")
        out.append((crypt(block, True) ^ previous).to_bytes(BLOCK_SIZE, "big"))
        previous = block
    plaintext = unpad(b"".join(out))
    _PLAINTEXTS[memo_key] = plaintext
    if len(_PLAINTEXTS) > _PLAINTEXT_CACHE_MAX:
        _PLAINTEXTS.popitem(last=False)
    return plaintext
